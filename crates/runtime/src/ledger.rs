//! Per-phase busy-time accounting — the data behind Fig. 9.
//!
//! Every task the simulator runs contributes one `(start, end, phase)`
//! interval. The ledger can then report total busy time per phase and a
//! binned utilisation profile: for each time bin, the fraction of total
//! worker capacity spent in each phase — exactly what the paper's
//! *Projections* timeline shows.

use crate::phase::{Phase, N_PHASES};
use paratreet_telemetry::{MetricSource, MetricsRegistry};

/// One busy interval of one worker.
#[derive(Clone, Copy, Debug)]
pub struct Interval {
    /// Virtual start time (seconds).
    pub start: f64,
    /// Virtual end time (seconds).
    pub end: f64,
    /// Activity category.
    pub phase: Phase,
}

/// Accumulates busy intervals across all workers.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    intervals: Vec<Interval>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Records a busy interval.
    pub fn record(&mut self, start: f64, end: f64, phase: Phase) {
        debug_assert!(end >= start);
        self.intervals.push(Interval { start, end, phase });
    }

    /// All recorded intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Total busy seconds per phase.
    pub fn busy_per_phase(&self) -> [f64; N_PHASES] {
        let mut out = [0.0; N_PHASES];
        for iv in &self.intervals {
            out[iv.phase.index()] += iv.end - iv.start;
        }
        out
    }

    /// Total busy seconds across all phases.
    pub fn total_busy(&self) -> f64 {
        self.busy_per_phase().iter().sum()
    }

    /// The latest interval end (0 when empty).
    pub fn horizon(&self) -> f64 {
        self.intervals.iter().map(|iv| iv.end).fold(0.0, f64::max)
    }

    /// Utilisation profile: `bins` time slices over `[0, horizon)`; each
    /// slice reports busy worker-seconds per phase divided by slice
    /// capacity (`slice_width × n_workers`), so a fully busy machine
    /// sums to 1.0 across phases.
    ///
    /// Degenerate inputs — an empty ledger, `bins == 0`, or
    /// `n_workers == 0` — yield an empty profile: there is no horizon to
    /// slice or no capacity to divide by, and a frame of fabricated
    /// zero rows would plot as a real (idle) timeline.
    pub fn profile(&self, bins: usize, n_workers: usize) -> Vec<[f64; N_PHASES]> {
        let horizon = self.horizon();
        if bins == 0 || n_workers == 0 || self.intervals.is_empty() || horizon == 0.0 {
            return Vec::new();
        }
        let mut out = vec![[0.0; N_PHASES]; bins];
        let width = horizon / bins as f64;
        let capacity = width * n_workers as f64;
        for iv in &self.intervals {
            // Spread the interval over the bins it overlaps.
            let first = ((iv.start / width) as usize).min(bins - 1);
            let last = ((iv.end / width) as usize).min(bins - 1);
            for (b, slot) in out.iter_mut().enumerate().take(last + 1).skip(first) {
                let lo = (b as f64 * width).max(iv.start);
                let hi = ((b + 1) as f64 * width).min(iv.end);
                if hi > lo {
                    slot[iv.phase.index()] += (hi - lo) / capacity;
                }
            }
        }
        out
    }
}

impl MetricSource for Ledger {
    /// Registers per-phase busy seconds as `{prefix}.<phase_label>`
    /// (labels snake_cased) plus `{prefix}.total`.
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        let busy = self.busy_per_phase();
        for phase in Phase::ALL {
            let label = phase.label().replace(' ', "_");
            registry.set_f64(format!("{prefix}.{label}"), busy[phase.index()]);
        }
        registry.set_f64(format!("{prefix}.total"), self.total_busy());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_totals_per_phase() {
        let mut l = Ledger::new();
        l.record(0.0, 1.0, Phase::TreeBuild);
        l.record(0.5, 2.5, Phase::LocalTraversal);
        l.record(2.0, 3.0, Phase::LocalTraversal);
        let busy = l.busy_per_phase();
        assert_eq!(busy[Phase::TreeBuild.index()], 1.0);
        assert_eq!(busy[Phase::LocalTraversal.index()], 3.0);
        assert_eq!(l.total_busy(), 4.0);
        assert_eq!(l.horizon(), 3.0);
    }

    #[test]
    fn profile_conserves_busy_time() {
        let mut l = Ledger::new();
        l.record(0.0, 4.0, Phase::LocalTraversal);
        l.record(1.0, 3.0, Phase::CacheInsertion);
        let workers = 2;
        let bins = 8;
        let prof = l.profile(bins, workers);
        let width = l.horizon() / bins as f64;
        let capacity = width * workers as f64;
        let total: f64 = prof.iter().flat_map(|b| b.iter()).sum::<f64>() * capacity;
        assert!((total - l.total_busy()).abs() < 1e-9);
    }

    #[test]
    fn fully_busy_machine_fills_bins() {
        let mut l = Ledger::new();
        l.record(0.0, 2.0, Phase::LocalTraversal);
        l.record(0.0, 2.0, Phase::LocalTraversal);
        let prof = l.profile(4, 2);
        for bin in prof {
            let sum: f64 = bin.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_ledger_has_empty_profile() {
        let l = Ledger::new();
        assert_eq!(l.horizon(), 0.0);
        assert!(l.profile(3, 4).is_empty());
    }

    #[test]
    fn zero_bins_has_empty_profile() {
        let mut l = Ledger::new();
        l.record(0.0, 1.0, Phase::TreeBuild);
        assert!(l.profile(0, 4).is_empty());
    }

    #[test]
    fn zero_workers_has_empty_profile() {
        let mut l = Ledger::new();
        l.record(0.0, 1.0, Phase::TreeBuild);
        assert!(l.profile(3, 0).is_empty());
    }
}
