//! Traversal completeness: for *any* opening criterion, every (target
//! particle, source particle) pair must be accounted exactly once —
//! either through a leaf interaction or through exactly one pruned
//! ancestor's summary. A visitor that accumulates source *mass* per
//! target makes this a conservation law: after any traversal, every
//! particle has absorbed exactly the total mass of the universe.

use paratreet_core::{
    Configuration, DecompType, Framework, SpatialNodeView, TargetBucket, TraversalKind, Visitor,
};
use paratreet_particles::{gen, Particle};
use paratreet_tree::{CountData, Data, TreeType};
use proptest::prelude::*;

/// Accumulates the mass of every source it is shown into each target's
/// `density` field; "opens" nodes by a deterministic pseudo-random hash
/// so the pruning pattern is arbitrary but reproducible.
struct MassAuditVisitor {
    /// Salt for the pseudo-random open decision.
    salt: u64,
}

/// Data carrying subtree mass for the audit.
#[derive(Clone, Debug, Default, PartialEq)]
struct MassData {
    mass: f64,
    count: CountData,
}

impl Data for MassData {
    fn from_leaf(particles: &[Particle], bbox: &paratreet_geometry::BoundingBox) -> Self {
        MassData {
            mass: particles.iter().map(|p| p.mass).sum(),
            count: CountData::from_leaf(particles, bbox),
        }
    }
    fn merge(&mut self, child: &Self) {
        self.mass += child.mass;
        self.count.merge(&child.count);
    }
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.mass.to_le_bytes());
        self.count.encode(out);
    }
    fn decode(input: &[u8]) -> Option<(Self, usize)> {
        let bytes: [u8; 8] = input.get(..8)?.try_into().ok()?;
        let (count, used) = CountData::decode(&input[8..])?;
        Some((MassData { mass: f64::from_le_bytes(bytes), count }, 8 + used))
    }
}

impl Visitor for MassAuditVisitor {
    type Data = MassData;
    type State = ();

    fn open(&self, source: &SpatialNodeView<'_, MassData>, target: &TargetBucket<()>) -> bool {
        // Arbitrary deterministic pruning: hash the (node, bucket) pair.
        let h = source
            .key
            .raw()
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(target.leaf_key.raw())
            .wrapping_mul(self.salt | 1);
        (h >> 32) & 3 != 0 // open ~75% of the time
    }

    fn node(&self, source: &SpatialNodeView<'_, MassData>, target: &mut TargetBucket<()>) {
        for p in &mut target.particles {
            p.density += source.data.mass;
        }
    }

    fn leaf(&self, source: &SpatialNodeView<'_, MassData>, target: &mut TargetBucket<()>) {
        for p in &mut target.particles {
            for s in source.particles {
                p.density += s.mass;
            }
        }
    }

    fn cell(
        &self,
        source: &SpatialNodeView<'_, MassData>,
        target: &SpatialNodeView<'_, MassData>,
    ) -> bool {
        // Exercise both dual-tree branches pseudo-randomly.
        let h = source
            .key
            .raw()
            .rotate_left(17)
            .wrapping_add(target.key.raw())
            .wrapping_mul(self.salt | 1);
        (h >> 16) & 1 == 0
    }
}

fn run_audit(
    particles: Vec<Particle>,
    tree_type: TreeType,
    decomp_type: DecompType,
    kind: TraversalKind,
    salt: u64,
) -> (f64, Vec<f64>) {
    let total_mass: f64 = particles.iter().map(|p| p.mass).sum();
    let config = Configuration {
        tree_type,
        decomp_type,
        bucket_size: 8,
        n_subtrees: 6,
        n_partitions: 5,
        ..Default::default()
    };
    let mut fw: Framework<MassData> = Framework::new(config, particles);
    let visitor = MassAuditVisitor { salt };
    fw.step(|s| {
        s.traverse(&visitor, kind);
    });
    (total_mass, fw.particles().iter().map(|p| p.density).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_pair_accounted_exactly_once(
        n in 10usize..250,
        seed in 0u64..1000,
        salt in 0u64..1000,
        tree_idx in 0usize..4,
        decomp_idx in 0usize..4,
        kind_idx in 0usize..3,
    ) {
        let tree_type =
            [TreeType::Octree, TreeType::KdTree, TreeType::LongestDim, TreeType::BinaryOct][tree_idx];
        let decomp_type =
            [DecompType::Sfc, DecompType::Oct, DecompType::Kd, DecompType::LongestDim][decomp_idx];
        let kind =
            [TraversalKind::TopDown, TraversalKind::BasicDfs, TraversalKind::DualTree][kind_idx];
        let particles = gen::clustered(n, 3, seed, 1.0, 1.0);
        let (total, absorbed) = run_audit(particles, tree_type, decomp_type, kind, salt);
        for (i, a) in absorbed.iter().enumerate() {
            prop_assert!(
                (a - total).abs() < 1e-9 * total.max(1.0),
                "particle {i} absorbed {a}, expected {total} \
                 ({tree_type:?}/{decomp_type:?}/{kind:?})"
            );
        }
    }

    #[test]
    fn up_and_down_is_also_complete(
        n in 10usize..200,
        seed in 0u64..1000,
        salt in 0u64..1000,
    ) {
        // Up-and-down reaches every node through leaf-to-root sibling
        // expansion; it must account every pair exactly once too.
        let particles = gen::uniform_cube(n, seed, 1.0, 1.0);
        let (total, absorbed) = run_audit(
            particles,
            TreeType::Octree,
            DecompType::Sfc,
            TraversalKind::UpAndDown,
            salt,
        );
        for (i, a) in absorbed.iter().enumerate() {
            prop_assert!(
                (a - total).abs() < 1e-9 * total.max(1.0),
                "particle {i} absorbed {a}, expected {total}"
            );
        }
    }
}

#[test]
fn open_everything_gives_exact_n_squared() {
    struct OpenAll;
    impl Visitor for OpenAll {
        type Data = CountData;
        type State = ();
        fn open(&self, _s: &SpatialNodeView<'_, CountData>, _t: &TargetBucket<()>) -> bool {
            true
        }
        fn node(&self, _s: &SpatialNodeView<'_, CountData>, _t: &mut TargetBucket<()>) {
            panic!("node() must never fire when everything opens");
        }
        fn leaf(&self, _s: &SpatialNodeView<'_, CountData>, _t: &mut TargetBucket<()>) {}
    }
    let n = 300usize;
    let particles = gen::uniform_cube(n, 3, 1.0, 1.0);
    let config = Configuration { bucket_size: 8, ..Default::default() };
    let mut fw: Framework<CountData> = Framework::new(config, particles);
    let (_, report) = fw.step(|s| {
        s.traverse(&OpenAll, TraversalKind::TopDown);
    });
    assert_eq!(report.counts.leaf_interactions, (n * n) as u64);
    assert_eq!(report.counts.node_interactions, 0);
}

#[test]
fn open_nothing_prunes_at_the_root() {
    struct OpenNone;
    impl Visitor for OpenNone {
        type Data = CountData;
        type State = ();
        fn open(&self, _s: &SpatialNodeView<'_, CountData>, _t: &TargetBucket<()>) -> bool {
            false
        }
        fn node(&self, _s: &SpatialNodeView<'_, CountData>, _t: &mut TargetBucket<()>) {}
        fn leaf(&self, _s: &SpatialNodeView<'_, CountData>, _t: &mut TargetBucket<()>) {
            panic!("leaf() must never fire when nothing opens");
        }
    }
    let particles = gen::uniform_cube(200, 3, 1.0, 1.0);
    let config = Configuration { bucket_size: 8, ..Default::default() };
    let mut fw: Framework<CountData> = Framework::new(config, particles);
    let (_, report) = fw.step(|s| {
        s.traverse(&OpenNone, TraversalKind::TopDown);
    });
    // Every bucket prunes exactly once, at the root: one node()
    // application per target particle.
    assert_eq!(report.counts.node_interactions, 200);
    assert_eq!(report.counts.leaf_interactions, 0);
}
