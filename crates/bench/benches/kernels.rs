//! Criterion microbenchmarks: the numeric kernels at the bottom of every
//! traversal (gravity exact/approx, SPH kernel evaluations).

use criterion::{criterion_group, criterion_main, Criterion};
use paratreet_apps::gravity::{grav_approx, grav_exact, CentroidData};
use paratreet_apps::sph::{kernel_dw_dr, kernel_w};
use paratreet_geometry::{BoundingBox, Vec3};
use paratreet_particles::gen;
use paratreet_tree::Data;
use std::hint::black_box;

fn bench_gravity_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    let ps = gen::uniform_cube(1024, 3, 1.0, 1.0);
    let data = CentroidData::from_leaf(&ps, &BoundingBox::empty());
    let centroid = data.centroid();
    let quad = data.quad_about_centroid();
    let targets: Vec<Vec3> = gen::uniform_cube(1024, 5, 4.0, 1.0).iter().map(|p| p.pos).collect();

    group.throughput(criterion::Throughput::Elements(targets.len() as u64));
    group.bench_function("grav_exact_1k", |b| {
        b.iter(|| {
            let mut acc = Vec3::ZERO;
            for &t in &targets {
                acc += grav_exact(t, centroid, 1.0, 0.01).0;
            }
            black_box(acc)
        })
    });
    group.bench_function("grav_approx_quad_1k", |b| {
        b.iter(|| {
            let mut acc = Vec3::ZERO;
            for &t in &targets {
                acc += grav_approx(t, centroid, data.sum_mass, &quad).0;
            }
            black_box(acc)
        })
    });
    group.bench_function("sph_kernel_1k", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            for (i, &t) in targets.iter().enumerate() {
                let r = t.norm() * 0.1;
                let h = 0.2 + (i % 7) as f64 * 0.01;
                sum += kernel_w(r, h) + kernel_dw_dr(r, h);
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_data_accumulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_accumulate");
    let ps = gen::uniform_cube(16, 7, 1.0, 1.0);
    let b_empty = BoundingBox::empty();
    group.bench_function("centroid_from_leaf_16", |b| {
        b.iter(|| black_box(CentroidData::from_leaf(black_box(&ps), &b_empty)))
    });
    let child = CentroidData::from_leaf(&ps, &b_empty);
    group.bench_function("centroid_merge", |b| {
        b.iter(|| {
            let mut parent = CentroidData::default();
            for _ in 0..8 {
                parent.merge(black_box(&child));
            }
            black_box(parent.sum_mass)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gravity_kernels, bench_data_accumulation);
criterion_main!(benches);
