//! Incremental tree maintenance vs. per-iteration full rebuilds.
//!
//! Runs a K-iteration gravity simulation twice per particle
//! distribution — once rebuilding the tree from scratch every step,
//! once maintaining it with the incremental update subsystem — on both
//! the shared-memory framework (wall-clock) and the machine model
//! (virtual time, with `Phase::TreeUpdate` replacing decomposition +
//! build on maintained steps). Writes `BENCH_tree_update.json`.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin bench_tree_update -- \
//!     --particles 20000 --iterations 5 --ranks 4
//! ```

use paratreet_apps::collision::orbital_period;
use paratreet_apps::gravity::{CentroidData, GravityVisitor};
use paratreet_bench::{fmt_seconds, print_header, print_row, Args};
use paratreet_core::{
    CacheModel, Configuration, DistributedEngine, Framework, TraversalKind, TreeMaintainer,
};
use paratreet_geometry::Vec3;
use paratreet_particles::gen::{self, DiskParams};
use paratreet_particles::Particle;
use paratreet_runtime::{MachineSpec, Phase};
use paratreet_telemetry::Json;

/// Accumulated cost of one K-iteration run.
#[derive(Clone, Copy, Default)]
struct RunCost {
    /// Decomposition + tree build + leaf sharing + incremental update.
    setup_s: f64,
    /// Traversal time (unchanged by maintenance; sanity column).
    traverse_s: f64,
    /// Whole-run time: wall seconds (shared) or summed virtual
    /// makespans (machine).
    total_s: f64,
    /// Buckets patched in place (incremental runs only).
    patched: u64,
    /// Subtree + full rebuilds triggered by drift (incremental only).
    rebuilds: u64,
    /// Grouped insert batches applied across the run (incremental only).
    batches: u64,
}

fn config(incremental: bool) -> Configuration {
    let mut config =
        Configuration { bucket_size: 16, n_subtrees: 16, n_partitions: 32, ..Default::default() };
    config.incremental.enabled = incremental;
    config
}

/// Leapfrog kick-drift between iterations (acc from the last traversal).
fn drift(particles: &mut [Particle], dt: f64) {
    for p in particles.iter_mut() {
        p.vel += p.acc * dt;
        p.pos += p.vel * dt;
        p.acc = Vec3::ZERO;
        p.potential = 0.0;
    }
}

/// K gravity iterations on the shared-memory framework (wall-clock).
fn shared_run(particles: Vec<Particle>, incremental: bool, iterations: usize, dt: f64) -> RunCost {
    let visitor = GravityVisitor::default();
    let mut fw: Framework<CentroidData> = Framework::new(config(incremental), particles);
    let mut cost = RunCost::default();
    let t0 = std::time::Instant::now();
    for step in 0..iterations {
        if step > 0 {
            drift(fw.particles_mut(), dt);
        }
        let (_, report) = fw.step(|s| {
            s.traverse(&visitor, TraversalKind::TopDown);
        });
        cost.setup_s += report.seconds_decompose
            + report.seconds_build
            + report.seconds_share
            + report.seconds_update;
        cost.traverse_s += report.seconds_traverse;
        if let Some(u) = &report.update {
            cost.patched = u.patched;
            cost.rebuilds = u.subtree_rebuilds + u.full_rebuilds;
            cost.batches = u.batches;
        }
    }
    cost.total_s = t0.elapsed().as_secs_f64();
    cost
}

/// K gravity iterations on the machine model (virtual time). Setup cost
/// is the per-phase busy time of decomposition, build, leaf sharing,
/// and incremental update, summed over the K simulated iterations.
fn machine_run(
    particles: Vec<Particle>,
    incremental: bool,
    iterations: usize,
    dt: f64,
    ranks: usize,
) -> RunCost {
    let visitor = GravityVisitor::default();
    let engine = DistributedEngine::new(
        MachineSpec::test(ranks, 2),
        config(incremental),
        CacheModel::WaitFree,
        TraversalKind::TopDown,
        &visitor,
    );
    let mut slot: Option<TreeMaintainer<CentroidData>> = None;
    let mut cost = RunCost::default();
    let mut ps = particles;
    for step in 0..iterations {
        if step > 0 {
            drift(&mut ps, dt);
        }
        let rep = if incremental {
            engine.run_maintained(&mut slot, ps)
        } else {
            engine.run_iteration(ps)
        };
        let busy = rep.ledger.busy_per_phase();
        cost.setup_s += busy[Phase::Decomposition.index()]
            + busy[Phase::TreeBuild.index()]
            + busy[Phase::LeafSharing.index()]
            + busy[Phase::TreeUpdate.index()];
        cost.traverse_s += busy[Phase::LocalTraversal.index()];
        cost.total_s += rep.makespan;
        cost.patched = rep.metrics.get_u64("tree.update.patched");
        cost.rebuilds = rep.metrics.get_u64("tree.update.subtree_rebuilds")
            + rep.metrics.get_u64("tree.update.full_rebuilds");
        cost.batches = rep.metrics.get_u64("tree.update.batches");
        ps = rep.particles;
    }
    cost
}

/// Runs `f` `repeats` times and keeps the run with the smallest setup
/// time — the standard minimum-estimator for wall-clock noise on a
/// shared machine (counters like patched/batches are deterministic, so
/// every run reports the same ones).
fn best_of(repeats: usize, mut f: impl FnMut() -> RunCost) -> RunCost {
    let mut best = f();
    for _ in 1..repeats {
        let c = f();
        if c.setup_s < best.setup_s {
            best = c;
        }
    }
    best
}

fn cost_json(c: &RunCost, incremental: bool) -> Json {
    let mut o = Json::obj();
    o.push("setup_s", Json::F64(c.setup_s));
    o.push("traverse_s", Json::F64(c.traverse_s));
    o.push("total_s", Json::F64(c.total_s));
    if incremental {
        o.push("buckets_patched", Json::U64(c.patched));
        o.push("drift_rebuilds", Json::U64(c.rebuilds));
        o.push("update_batches", Json::U64(c.batches));
    }
    o
}

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 20_000);
    let iterations = args.get_usize("iterations", 5);
    let seed = args.get_u64("seed", 17);
    let ranks = args.get_usize("ranks", 4);
    let out = args.get_str("out", "BENCH_tree_update.json");
    // Optional filter: run a single distribution (faster iteration when
    // tuning one workload); "all" keeps every row.
    let only = args.get_str("dist", "all");
    let repeats = args.get_usize("repeats", 3);

    let star_mass = 1.0;
    let distributions: Vec<(&str, Vec<Particle>, f64)> = vec![
        ("uniform", gen::uniform_cube(n, seed, 1.0, 1.0), 1.0 / 128.0),
        // The paper's clustered dataset: several Plummer spheres — the
        // case the acceptance criterion targets.
        ("clustered_plummer", gen::clustered(n, 4, seed, 1.0, 1.0), 1.0 / 128.0),
        (
            "disk",
            gen::keplerian_disk(n, seed, DiskParams::default()),
            orbital_period(2.0, star_mass) / 200.0,
        ),
    ];

    let mut doc = Json::obj();
    doc.push("bench", Json::Str("tree_update".to_string()));
    doc.push("particles", Json::U64(n as u64));
    doc.push("iterations", Json::U64(iterations as u64));
    doc.push("ranks", Json::U64(ranks as u64));
    doc.push("seed", Json::U64(seed));
    doc.push("repeats", Json::U64(repeats as u64));
    let mut rows = Vec::new();

    println!(
        "tree maintenance: full rebuild vs incremental, {n} particles, {iterations} iterations\n"
    );
    print_header(
        &["dist", "engine", "mode", "setup", "traverse", "total", "patched", "batches"],
        12,
    );

    for (name, particles, dt) in distributions {
        if only != "all" && name != only {
            continue;
        }
        let mut entry = Json::obj();
        entry.push("name", Json::Str(name.to_string()));

        for (engine, full, inc) in [
            (
                "shared",
                best_of(repeats, || shared_run(particles.clone(), false, iterations, dt)),
                best_of(repeats, || shared_run(particles.clone(), true, iterations, dt)),
            ),
            (
                "machine",
                best_of(repeats, || machine_run(particles.clone(), false, iterations, dt, ranks)),
                best_of(repeats, || machine_run(particles.clone(), true, iterations, dt, ranks)),
            ),
        ] {
            for (mode, c) in [("full", &full), ("incremental", &inc)] {
                print_row(
                    &[
                        name.to_string(),
                        engine.to_string(),
                        mode.to_string(),
                        fmt_seconds(c.setup_s),
                        fmt_seconds(c.traverse_s),
                        fmt_seconds(c.total_s),
                        if c.patched > 0 { c.patched.to_string() } else { "-".to_string() },
                        if c.batches > 0 { c.batches.to_string() } else { "-".to_string() },
                    ],
                    12,
                );
            }
            let speedup = if inc.setup_s > 0.0 { full.setup_s / inc.setup_s } else { 0.0 };
            println!("{:>12} {engine} setup speedup: {speedup:.2}x", "");
            let mut e = Json::obj();
            e.push("full", cost_json(&full, false));
            e.push("incremental", cost_json(&inc, true));
            e.push("setup_speedup", Json::F64(speedup));
            entry.push(engine, e);
        }
        rows.push(entry);
    }

    doc.push("distributions", Json::Arr(rows));
    std::fs::write(&out, format!("{doc}\n")).expect("write BENCH json");
    println!("\nwrote {out}");
}
