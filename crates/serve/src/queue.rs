//! A bounded MPMC work queue with both admission styles the service
//! offers: `try_push` (shed on overflow — the admission-control path)
//! and `push_wait` (block on overflow — the backpressure path).
//!
//! Each queued item carries an opaque **cost** (the service uses
//! predicted service nanoseconds); the queue maintains the running sum
//! so cost-based admission can read the backlog's predicted drain time
//! in O(1) without walking the queue. The cost-free `try_push` /
//! `push_wait` remain as zero-cost wrappers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push did not enqueue.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue was at capacity (`try_push` only); the item returns
    /// to the caller.
    Full(T),
    /// The queue was closed; the item returns to the caller.
    Closed(T),
}

struct Inner<T> {
    /// `(item, cost)` pairs; `cost_sum` tracks the queued total.
    items: VecDeque<(T, u64)>,
    cost_sum: u64,
    closed: bool,
}

/// Mutex + condvar bounded queue. `pop` blocks until an item arrives
/// or the queue is closed *and* drained, so workers finish in-flight
/// work before exiting.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An open queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), cost_sum: 0, closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues without blocking; [`PushError::Full`] at capacity.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        self.try_push_costed(item, 0)
    }

    /// [`Self::try_push`] with an attached cost added to the backlog sum.
    pub fn try_push_costed(&self, item: T, cost: u64) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back((item, cost));
        inner.cost_sum = inner.cost_sum.saturating_add(cost);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is full; [`PushError::Closed`]
    /// if it closes while waiting.
    pub fn push_wait(&self, item: T) -> Result<(), PushError<T>> {
        self.push_wait_costed(item, 0)
    }

    /// [`Self::push_wait`] with an attached cost added to the backlog sum.
    pub fn push_wait_costed(&self, item: T, cost: u64) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        inner.items.push_back((item, cost));
        inner.cost_sum = inner.cost_sum.saturating_add(cost);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, blocking while the queue is open and empty. `None`
    /// once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some((item, cost)) = inner.items.pop_front() {
                inner.cost_sum = inner.cost_sum.saturating_sub(cost);
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Sum of the costs attached to currently queued items.
    pub fn cost(&self) -> u64 {
        self.lock().cost_sum
    }

    /// Closes the queue: pushes fail from now on, pops drain what is
    /// left and then return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_sheds_at_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        match q.try_push(3) {
            Err(PushError::Closed(3)) => {}
            other => panic!("expected Closed(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cost_sum_tracks_pushes_and_pops() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.cost(), 0);
        q.try_push_costed("a", 100).unwrap();
        q.try_push_costed("b", 250).unwrap();
        q.try_push("c").unwrap(); // cost-free wrapper contributes 0
        assert_eq!(q.cost(), 350);
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.cost(), 250);
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("c"));
        assert_eq!(q.cost(), 0);
    }

    #[test]
    fn push_wait_blocks_until_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(10).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push_wait(11).is_ok());
        // The consumer frees the slot; the blocked push completes.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(q.pop(), Some(10));
        assert!(pusher.join().unwrap());
        assert_eq!(q.pop(), Some(11));
    }
}
