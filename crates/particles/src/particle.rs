//! The particle record shared by every application.
//!
//! ParaTreeT's applications (gravity, SPH, collisions) all operate on one
//! particle set, so — like the reference implementation — we keep a single
//! flat record with the union of per-application fields. The record is
//! `#[repr(C)]` and `Copy` so bucket slices serialise to the wire with a
//! straight memcpy and traversal kernels stream it efficiently.

use paratreet_geometry::{BoundingBox, MortonKey, Vec3};
use serde::{Deserialize, Serialize};

/// One simulation particle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Particle {
    /// Stable identifier, unique within a snapshot.
    pub id: u64,
    /// Gravitational / inertial mass.
    pub mass: f64,
    /// Position.
    pub pos: Vec3,
    /// Velocity.
    pub vel: Vec3,
    /// Acceleration accumulated by the current traversal.
    pub acc: Vec3,
    /// Gravitational potential accumulated by the current traversal.
    pub potential: f64,
    /// Gravitational softening length.
    pub softening: f64,
    /// Physical radius (collision detection; zero for point masses).
    pub radius: f64,
    /// SPH smoothing length.
    pub smoothing: f64,
    /// SPH mass density.
    pub density: f64,
    /// SPH pressure.
    pub pressure: f64,
    /// SPH specific internal energy.
    pub internal_energy: f64,
    /// Morton key within the current universe box (set by decomposition).
    pub key: MortonKey,
}

impl Particle {
    /// A point mass at `pos` — the minimal particle gravity needs.
    pub fn point_mass(id: u64, mass: f64, pos: Vec3) -> Particle {
        Particle { id, mass, pos, ..Particle::default() }
    }

    /// Kinetic energy `m v² / 2`.
    #[inline]
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self.mass * self.vel.norm_sq()
    }

    /// Specific orbital angular momentum about the origin.
    #[inline]
    pub fn angular_momentum(&self) -> Vec3 {
        self.pos.cross(self.vel) * self.mass
    }

    /// Resets the per-iteration accumulators (acceleration, potential,
    /// density, pressure) before a new traversal.
    #[inline]
    pub fn reset_accumulators(&mut self) {
        self.acc = Vec3::ZERO;
        self.potential = 0.0;
        self.density = 0.0;
        self.pressure = 0.0;
    }
}

/// Extension helpers over a flat particle vector.
pub trait ParticleVec {
    /// Tight bounding box of all particle positions.
    fn bounding_box(&self) -> BoundingBox;
    /// Total mass.
    fn total_mass(&self) -> f64;
    /// Mass-weighted centre of mass; the origin for an empty set.
    fn center_of_mass(&self) -> Vec3;
    /// Assigns Morton keys in `universe` to every particle.
    fn assign_keys(&mut self, universe: &BoundingBox);
    /// Sorts by Morton key (the SFC order decomposition relies on).
    fn sort_by_sfc_key(&mut self);
    /// Sum of kinetic energies.
    fn kinetic_energy(&self) -> f64;
}

impl ParticleVec for [Particle] {
    fn bounding_box(&self) -> BoundingBox {
        BoundingBox::around(self.iter().map(|p| p.pos))
    }

    fn total_mass(&self) -> f64 {
        self.iter().map(|p| p.mass).sum()
    }

    fn center_of_mass(&self) -> Vec3 {
        let m = self.total_mass();
        if m == 0.0 {
            return Vec3::ZERO;
        }
        let weighted: Vec3 = self.iter().map(|p| p.pos * p.mass).sum();
        weighted / m
    }

    fn assign_keys(&mut self, universe: &BoundingBox) {
        for p in self.iter_mut() {
            p.key = paratreet_geometry::morton_key(p.pos, universe);
        }
    }

    fn sort_by_sfc_key(&mut self) {
        self.sort_by(|a, b| a.key.cmp(&b.key).then(a.id.cmp(&b.id)));
    }

    fn kinetic_energy(&self) -> f64 {
        self.iter().map(|p| p.kinetic_energy()).sum()
    }
}

impl ParticleVec for Vec<Particle> {
    fn bounding_box(&self) -> BoundingBox {
        self.as_slice().bounding_box()
    }
    fn total_mass(&self) -> f64 {
        self.as_slice().total_mass()
    }
    fn center_of_mass(&self) -> Vec3 {
        self.as_slice().center_of_mass()
    }
    fn assign_keys(&mut self, universe: &BoundingBox) {
        self.as_mut_slice().assign_keys(universe)
    }
    fn sort_by_sfc_key(&mut self) {
        self.as_mut_slice().sort_by_sfc_key()
    }
    fn kinetic_energy(&self) -> f64 {
        self.as_slice().kinetic_energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_particles() -> Vec<Particle> {
        vec![
            Particle::point_mass(0, 1.0, Vec3::new(0.0, 0.0, 0.0)),
            Particle::point_mass(1, 2.0, Vec3::new(3.0, 0.0, 0.0)),
            Particle::point_mass(2, 1.0, Vec3::new(0.0, 4.0, 0.0)),
        ]
    }

    #[test]
    fn center_of_mass_weights_by_mass() {
        let ps = three_particles();
        let com = ps.center_of_mass();
        assert_eq!(com, Vec3::new(6.0 / 4.0, 4.0 / 4.0, 0.0));
        assert_eq!(ps.total_mass(), 4.0);
    }

    #[test]
    fn empty_set_is_well_defined() {
        let ps: Vec<Particle> = vec![];
        assert_eq!(ps.center_of_mass(), Vec3::ZERO);
        assert_eq!(ps.total_mass(), 0.0);
        assert!(ps.bounding_box().is_empty());
    }

    #[test]
    fn bounding_box_covers_all() {
        let ps = three_particles();
        let b = ps.bounding_box();
        for p in &ps {
            assert!(b.contains(p.pos));
        }
    }

    #[test]
    fn key_assignment_then_sort_is_sfc_order() {
        let mut ps = three_particles();
        let u = ps.bounding_box().padded(1e-9);
        ps.assign_keys(&u);
        ps.sort_by_sfc_key();
        for w in ps.windows(2) {
            assert!(w[0].key <= w[1].key);
        }
    }

    #[test]
    fn accumulator_reset() {
        let mut p = Particle::point_mass(0, 1.0, Vec3::ZERO);
        p.acc = Vec3::splat(5.0);
        p.potential = -1.0;
        p.density = 2.0;
        p.reset_accumulators();
        assert_eq!(p.acc, Vec3::ZERO);
        assert_eq!(p.potential, 0.0);
        assert_eq!(p.density, 0.0);
    }

    #[test]
    fn energies() {
        let mut p = Particle::point_mass(0, 2.0, Vec3::ZERO);
        p.vel = Vec3::new(3.0, 0.0, 0.0);
        assert_eq!(p.kinetic_energy(), 9.0);
        p.pos = Vec3::new(1.0, 0.0, 0.0);
        p.vel = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(p.angular_momentum(), Vec3::new(0.0, 0.0, 2.0));
    }
}
