//! Two-point correlation functions — the "n-point correlation" workload
//! the paper's evaluation section names among cosmology's algorithms
//! (§III), and the classic dual-tree application (Gray & Moore, the
//! paper's ref. 15, which SPIRIT also targets).
//!
//! The estimator needs *pair counts by separation bin*: `DD(r)` over the
//! data and `RR(r)` over a random catalogue, giving
//! `ξ(r) = DD(r)/RR(r) − 1` (Peebles–Hauser). Pair counting is where
//! tree pruning shines twice over:
//!
//! * a node pair whose separation range lies entirely *outside*
//!   `[r_min, r_max)` contributes nothing — prune;
//! * a node pair whose range lies entirely inside *one bin* contributes
//!   `|A|·|B|` to that bin — prune and credit in O(1), no descent.
//!
//! Both rules are one `open()` implementation here, so the same visitor
//! runs under the single-tree and the dual-tree traversals; the
//! dual-tree schedule additionally credits whole buckets below a target
//! node at once through `node()`.

use paratreet_core::{SpatialNodeView, TargetBucket, Visitor};
use paratreet_geometry::BoundingBox;
use paratreet_particles::Particle;
use paratreet_tree::data::wire;
use paratreet_tree::Data;

/// Tree `Data` for pair counting: tight box and particle count.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PairData {
    /// Tight bounding box of the subtree's particles.
    pub tight_box: BoundingBox,
    /// Particles beneath the node.
    pub count: u64,
}

impl Data for PairData {
    fn from_leaf(particles: &[Particle], _bbox: &BoundingBox) -> Self {
        PairData {
            tight_box: BoundingBox::around(particles.iter().map(|p| p.pos)),
            count: particles.len() as u64,
        }
    }

    fn merge(&mut self, child: &Self) {
        self.tight_box.merge(&child.tight_box);
        self.count += child.count;
    }

    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_vec3(out, self.tight_box.lo);
        wire::put_vec3(out, self.tight_box.hi);
        out.extend_from_slice(&self.count.to_le_bytes());
    }

    fn decode(input: &[u8]) -> Option<(Self, usize)> {
        let mut off = 0;
        let lo = wire::get_vec3(input, &mut off)?;
        let hi = wire::get_vec3(input, &mut off)?;
        let bytes: [u8; 8] = input.get(off..off + 8)?.try_into().ok()?;
        off += 8;
        Some((
            PairData { tight_box: BoundingBox { lo, hi }, count: u64::from_le_bytes(bytes) },
            off,
        ))
    }
}

/// Logarithmic (or linear) separation bins over `[r_min, r_max)`.
#[derive(Clone, Debug)]
pub struct SeparationBins {
    /// Inner edge of the first bin.
    pub r_min: f64,
    /// Outer edge of the last bin.
    pub r_max: f64,
    /// Bin edges, ascending, `n_bins + 1` entries.
    pub edges: Vec<f64>,
}

impl SeparationBins {
    /// `n` logarithmically spaced bins over `[r_min, r_max)`.
    pub fn logarithmic(r_min: f64, r_max: f64, n: usize) -> SeparationBins {
        assert!(r_min > 0.0 && r_max > r_min && n > 0);
        let lmin = r_min.ln();
        let step = (r_max.ln() - lmin) / n as f64;
        let mut edges: Vec<f64> = (0..=n).map(|i| (lmin + i as f64 * step).exp()).collect();
        // Pin the end edges exactly so `bin_of(r_min)` and range checks
        // agree bit-for-bit with `r_min`/`r_max`.
        edges[0] = r_min;
        edges[n] = r_max;
        SeparationBins { r_min, r_max, edges }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.edges.len() - 1
    }

    /// True when there are no bins (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bin containing separation `r`, if within range.
    #[inline]
    pub fn bin_of(&self, r: f64) -> Option<usize> {
        if r < self.r_min || r >= self.r_max {
            return None;
        }
        // Binary search on edges (few bins: partition_point is fine).
        let i = self.edges.partition_point(|e| *e <= r);
        Some(i.saturating_sub(1).min(self.len() - 1))
    }

    /// If the whole closed range `[lo, hi]` falls in one bin, its index.
    #[inline]
    pub fn single_bin(&self, lo: f64, hi: f64) -> Option<usize> {
        let a = self.bin_of(lo)?;
        let b = self.bin_of(hi)?;
        (a == b).then_some(a)
    }

    /// Geometric bin centres, for plotting.
    pub fn centers(&self) -> Vec<f64> {
        self.edges.windows(2).map(|w| (w[0] * w[1]).sqrt()).collect()
    }
}

/// Per-bucket pair-count state: one histogram per bucket (merged after
/// the traversal), counting *ordered* pairs (target, source).
#[derive(Clone, Debug, Default)]
pub struct PairCounts {
    /// Ordered pair counts per bin.
    pub bins: Vec<u64>,
}

/// The pair-counting visitor.
pub struct PairCountVisitor {
    /// Separation binning.
    pub bins: SeparationBins,
}

impl PairCountVisitor {
    fn ensure(&self, target: &mut TargetBucket<PairCounts>) {
        if target.state.bins.len() != self.bins.len() {
            target.state.bins = vec![0; self.bins.len()];
        }
    }

    /// The separation range between a source region and a target region.
    fn range(src: &BoundingBox, tgt: &BoundingBox) -> (f64, f64) {
        let lo = src.dist_sq_to_box(tgt).sqrt();
        // Upper bound: farthest corner-to-corner distance.
        let hi2 = {
            let mut m = 0.0f64;
            for i in 0..3 {
                let a = (tgt.hi.component(i) - src.lo.component(i)).abs();
                let b = (src.hi.component(i) - tgt.lo.component(i)).abs();
                let d = a.max(b);
                m += d * d;
            }
            m
        };
        (lo, hi2.sqrt())
    }
}

impl Visitor for PairCountVisitor {
    type Data = PairData;
    type State = PairCounts;

    fn open(
        &self,
        source: &SpatialNodeView<'_, PairData>,
        target: &TargetBucket<PairCounts>,
    ) -> bool {
        if source.data.count == 0 {
            return false;
        }
        let (lo, hi) = Self::range(&source.data.tight_box, &target.bbox);
        if hi < self.bins.r_min || lo >= self.bins.r_max {
            return false; // entirely out of range: contributes nothing
        }
        // Entirely inside one bin: node() credits it in O(1).
        self.bins.single_bin(lo, hi).is_none()
    }

    fn node(&self, source: &SpatialNodeView<'_, PairData>, target: &mut TargetBucket<PairCounts>) {
        self.ensure(target);
        let (lo, hi) = Self::range(&source.data.tight_box, &target.bbox);
        if let Some(bin) = self.bins.single_bin(lo, hi) {
            target.state.bins[bin] += source.data.count * target.particles.len() as u64;
        }
        // Out-of-range prunes contribute nothing (hi < r_min or lo >= r_max).
    }

    fn leaf(&self, source: &SpatialNodeView<'_, PairData>, target: &mut TargetBucket<PairCounts>) {
        self.ensure(target);
        for tp in &target.particles {
            for sp in source.particles {
                if sp.id == tp.id {
                    continue;
                }
                if let Some(bin) = self.bins.bin_of(sp.pos.dist(tp.pos)) {
                    target.state.bins[bin] += 1;
                }
            }
        }
    }

    fn cell(
        &self,
        source: &SpatialNodeView<'_, PairData>,
        target: &SpatialNodeView<'_, PairData>,
    ) -> bool {
        // Open both sides only while the target is *much* larger than
        // the source; otherwise keep the target whole so out-of-range
        // and single-bin prunes credit entire target subtrees at once
        // (B instead of B² child pairs).
        target.data.tight_box.radius_sq() > 4.0 * source.data.tight_box.radius_sq()
    }
}

/// Counts ordered pairs of `particles` by separation bin with a tree
/// traversal (`kind` may be any schedule; `DualTree` is the natural one).
pub fn pair_counts(
    particles: Vec<Particle>,
    bins: &SeparationBins,
    config: paratreet_core::Configuration,
    kind: paratreet_core::TraversalKind,
) -> Vec<u64> {
    let visitor = PairCountVisitor { bins: bins.clone() };
    let mut fw: paratreet_core::Framework<PairData> =
        paratreet_core::Framework::new(config, particles);
    let (states, _) = fw.step(|step| {
        let (states, _) = step.traverse(&visitor, kind);
        states
    });
    let mut total = vec![0u64; bins.len()];
    for s in states {
        for (t, b) in total.iter_mut().zip(s.bins.iter().chain(std::iter::repeat(&0))) {
            *t += *b;
        }
    }
    total
}

/// The Peebles–Hauser estimator `ξ(r) = (DD/n_d²) / (RR/n_r²) − 1`,
/// using a uniform random catalogue of `random.len()` points in the same
/// volume. Bins with empty `RR` yield `f64::NAN`.
pub fn two_point_correlation(
    data: Vec<Particle>,
    random: Vec<Particle>,
    bins: &SeparationBins,
    config: paratreet_core::Configuration,
    kind: paratreet_core::TraversalKind,
) -> Vec<f64> {
    let n_d = data.len() as f64;
    let n_r = random.len() as f64;
    let dd = pair_counts(data, bins, config.clone(), kind);
    let rr = pair_counts(random, bins, config, kind);
    dd.iter()
        .zip(&rr)
        .map(|(&dd, &rr)| {
            if rr == 0 {
                f64::NAN
            } else {
                (dd as f64 / (n_d * n_d)) / (rr as f64 / (n_r * n_r)) - 1.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_core::{Configuration, TraversalKind};
    use paratreet_particles::gen;

    fn brute_counts(ps: &[Particle], bins: &SeparationBins) -> Vec<u64> {
        let mut out = vec![0u64; bins.len()];
        for a in ps {
            for b in ps {
                if a.id == b.id {
                    continue;
                }
                if let Some(i) = bins.bin_of(a.pos.dist(b.pos)) {
                    out[i] += 1;
                }
            }
        }
        out
    }

    fn config() -> Configuration {
        Configuration { bucket_size: 8, n_subtrees: 6, n_partitions: 5, ..Default::default() }
    }

    #[test]
    fn bins_cover_range_without_gaps() {
        let bins = SeparationBins::logarithmic(0.01, 1.0, 10);
        assert_eq!(bins.len(), 10);
        assert_eq!(bins.bin_of(0.009), None);
        assert_eq!(bins.bin_of(1.0), None);
        assert_eq!(bins.bin_of(0.01), Some(0));
        // Every edge belongs to the bin it opens.
        for (i, w) in bins.edges.windows(2).enumerate() {
            assert_eq!(bins.bin_of(w[0]), Some(i));
            let mid = (w[0] * w[1]).sqrt();
            assert_eq!(bins.bin_of(mid), Some(i));
        }
        assert_eq!(bins.single_bin(0.011, 0.0111), Some(0));
        assert_eq!(bins.single_bin(0.011, 0.9), None);
        assert!(!bins.is_empty());
        assert_eq!(bins.centers().len(), 10);
    }

    #[test]
    fn tree_counts_match_brute_force_all_traversals() {
        let ps = gen::clustered(400, 3, 7, 1.0, 1.0);
        let bins = SeparationBins::logarithmic(0.01, 1.5, 8);
        let want = brute_counts(&ps, &bins);
        for kind in [TraversalKind::TopDown, TraversalKind::BasicDfs, TraversalKind::DualTree] {
            let got = pair_counts(ps.clone(), &bins, config(), kind);
            assert_eq!(got, want, "{kind:?}");
        }
    }

    #[test]
    fn traversal_schedules_trade_visits_for_identical_counts() {
        // All three schedules apply the same source-side bulk credits
        // (open() already collapses single-bin node pairs), so exact
        // pair evaluations are identical; what differs is scheduling
        // overhead. The transposed TopDown amortises node visits across
        // every interested bucket — an order of magnitude fewer visits
        // than walking the tree once per bucket, with the dual-tree
        // schedule in between (its per-(node,node) pair walk still
        // re-visits sources per target subtree).
        let ps = gen::uniform_cube(1500, 5, 1.0, 1.0);
        let bins = SeparationBins::logarithmic(0.02, 0.25, 6);
        let visitor = PairCountVisitor { bins };
        let run = |kind| {
            let mut fw: paratreet_core::Framework<PairData> =
                paratreet_core::Framework::new(config(), ps.clone());
            let (_, report) = fw.step(|s| {
                s.traverse(&visitor, kind);
            });
            report.counts
        };
        let dual = run(TraversalKind::DualTree);
        let basic = run(TraversalKind::BasicDfs);
        let transposed = run(TraversalKind::TopDown);
        assert_eq!(dual.leaf_interactions, basic.leaf_interactions);
        assert_eq!(transposed.leaf_interactions, basic.leaf_interactions);
        assert!(
            transposed.nodes_visited * 10 < basic.nodes_visited,
            "transposition must amortise visits: {} vs {}",
            transposed.nodes_visited,
            basic.nodes_visited
        );
        assert!(transposed.nodes_visited < dual.nodes_visited);
    }

    #[test]
    fn uniform_field_has_near_zero_correlation() {
        let data = gen::uniform_cube(2000, 3, 1.0, 1.0);
        let random = gen::uniform_cube(2000, 991, 1.0, 1.0);
        let bins = SeparationBins::logarithmic(0.1, 0.8, 5);
        let xi = two_point_correlation(data, random, &bins, config(), TraversalKind::TopDown);
        for (i, v) in xi.iter().enumerate() {
            assert!(v.abs() < 0.2, "bin {i}: ξ = {v} should be ~0 for uniform data");
        }
    }

    #[test]
    fn clustered_field_is_positively_correlated_at_small_r() {
        let data = gen::clustered(2000, 5, 11, 1.0, 1.0);
        let random = gen::uniform_cube(2000, 993, 1.0, 1.0);
        let bins = SeparationBins::logarithmic(0.02, 1.0, 6);
        let xi = two_point_correlation(data, random, &bins, config(), TraversalKind::DualTree);
        assert!(
            xi[0] > 1.0,
            "clustered data must correlate strongly at small separations: ξ = {:?}",
            xi
        );
        // Correlation decays with separation.
        assert!(xi[0] > xi[bins.len() - 1]);
    }

    #[test]
    fn pair_data_wire_roundtrip() {
        let ps = gen::uniform_cube(20, 3, 1.0, 1.0);
        let d = PairData::from_leaf(&ps, &BoundingBox::empty());
        let mut buf = Vec::new();
        d.encode(&mut buf);
        let (back, used) = PairData::decode(&buf).unwrap();
        assert_eq!(back, d);
        assert_eq!(used, buf.len());
    }
}
