//! The query service: a single writer advancing the live tree, a
//! reader pool answering query batches against pinned snapshots — and,
//! since ISSUE 9, a service that stays up and stays honest under
//! overload and partial failure.
//!
//! Wiring:
//!
//! ```text
//!  clients --submit--> BoundedQueue --pop--> worker pool (catch_unwind)
//!     |       |            |                    |  pin()        |
//!     |  Overloaded /      |                 SnapshotRing <--publish-- writer
//!     |  OverBudget        +- blocks (Defer)     |          (catch_unwind)
//!     +<- (Shed/CostAware)                       |
//!                         supervisor: reaps + respawns workers,
//!                         drives the degradation ladder, watches
//!                         the writer (stale-serving mode)
//! ```
//!
//! Latency is measured from `Request::submitted_at` to completion, so
//! queue wait is charged to the service — the histograms' p99/p999 are
//! end-to-end numbers, which is what admission control protects.
//!
//! The overload story, in the order a request meets it:
//!
//! 1. **Admission** ([`QueryService::submit`]): under
//!    [`AdmissionPolicy::CostAware`] the EWMA [`CostModel`] predicts
//!    the batch's service time from each query's entry-subtree
//!    population; if backlog + batch cannot fit the batch's deadline
//!    (or [`ServeConfig::max_backlog`] without one) the batch is shed
//!    with [`ServeError::OverBudget`]. Depth-only `Shed` remains the
//!    fallback knob, and the queue's hard capacity still backstops
//!    `CostAware`.
//! 2. **Queue** — deadline-aware at pop time: a worker drops requests
//!    whose deadline already passed, answering
//!    [`ServeError::DeadlineExceeded`] instead of executing uselessly.
//! 3. **Execution** — at the supervisor-driven degradation level:
//!    clamped kNN `k`, shrunk ball radii (the opening-angle analog),
//!    truncated range answers with a resume cursor; every such answer
//!    is marked `degraded`/`partial`.
//! 4. **Failure** — the batch runs under `catch_unwind`; a panic
//!    answers the batch with [`ServeError::WorkerPanicked`], kills the
//!    worker (its scratch may be poisoned), and the supervisor
//!    respawns a fresh one — bounded by [`ServeConfig::respawn_limit`]
//!    so a deterministic poison pill cannot spawn forever. A panicked
//!    writer flips the service into stale-serving mode: readers keep
//!    answering from the last snapshot and [`QueryService::health`]
//!    surfaces the staleness bound.

use crate::cost::CostModel;
use crate::degrade::{DegradeConfig, PressureTracker};
use crate::error::ServeError;
use crate::health::{JoinOutcome, ServiceHealth, ShutdownReport, WorkerJoinStats, WriterState};
use crate::load::checksum_fold;
use crate::queue::{BoundedQueue, PushError};
use crate::request::{execute_batch_degraded, QueryClass, Request, Response};
use crate::snapshot::{PinnedSnapshot, SnapshotRing};
use crossbeam::channel::Sender;
use paratreet_core::TreeMaintainer;
use paratreet_geometry::BoundingBox;
use paratreet_particles::Particle;
use paratreet_telemetry::{FlightRecorder, Histogram, MetricsRegistry, SpanLink, Telemetry, Track};
use paratreet_tree::query::entry_subtree;
use paratreet_tree::{BuiltTree, Data, QueryScratch};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What happens when work arrives at submission time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Reject the batch with [`ServeError::Overloaded`] when the queue
    /// is full (depth-only load shedding — the fallback knob).
    Shed,
    /// Block the submitter until space frees (backpressure).
    Defer,
    /// Predict the batch's service time with the EWMA cost model and
    /// shed with [`ServeError::OverBudget`] when backlog + batch cannot
    /// fit the deadline (or [`ServeConfig::max_backlog`] without one).
    /// The queue's capacity still backstops it with `Overloaded`.
    CostAware,
}

/// Deterministic failure injection for chaos tests and the CI overload
/// smoke. Fail points fire inside the same `catch_unwind` regions that
/// protect real panics, so injected faults exercise the genuine
/// recovery paths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailPoints {
    /// Panic the worker that pops the N-th batch (1-based, counted
    /// across all workers in pop order).
    pub worker_panic_at_batch: Option<u64>,
    /// Panic the writer just before it would publish this epoch.
    pub writer_panic_at_epoch: Option<u64>,
}

/// Service sizing and policy.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Reader (worker) threads. Zero is allowed — nothing drains the
    /// queue, which the overload tests use to exercise shedding
    /// deterministically.
    pub workers: usize,
    /// Work queue capacity, in batches.
    pub queue_capacity: usize,
    /// Snapshot ring capacity — the snapshot-lag budget granted to the
    /// slowest reader before the writer stalls.
    pub ring_capacity: usize,
    /// Admission behaviour.
    pub admission: AdmissionPolicy,
    /// Backlog-time bound for [`AdmissionPolicy::CostAware`] when a
    /// batch carries no deadline: shed if the predicted completion
    /// exceeds this. `None` = no bound (only deadlines and queue
    /// capacity shed).
    pub max_backlog: Option<Duration>,
    /// The degradation ladder ([`DegradeConfig::disabled`] pins level 0).
    pub degrade: DegradeConfig,
    /// Worker respawns the supervisor will perform before quarantining
    /// (answering panicked batches but no longer replacing workers).
    pub respawn_limit: u32,
    /// Supervisor tick interval: worker reaping cadence and the
    /// pressure ladder's clock.
    pub supervision_interval: Duration,
    /// Failure injection (chaos tests; all-`None` in production).
    pub fail: FailPoints,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 256,
            ring_capacity: 8,
            admission: AdmissionPolicy::Shed,
            max_backlog: None,
            degrade: DegradeConfig::disabled(),
            respawn_limit: 8,
            supervision_interval: Duration::from_millis(1),
            fail: FailPoints::default(),
        }
    }
}

/// How a spawned writer paces tree advances.
#[derive(Clone, Copy, Debug)]
pub struct WriterConfig {
    /// Advances to run before the writer retires (the service keeps
    /// answering against the last snapshot afterwards).
    pub iterations: u64,
    /// Optional sleep between advances (throttles publication churn).
    pub pace: Option<Duration>,
}

/// The writer's motion model: integrates `particles` between advances
/// (`iteration` counts from 1).
pub type MotionModel = Box<dyn FnMut(&mut [Particle], u64) + Send>;

/// One queued unit of work: a batch of requests and where to send the
/// answers. `reply: None` is fire-and-forget (metrics only).
struct WorkItem {
    requests: Vec<Request>,
    reply: Option<Sender<Vec<Response>>>,
    /// When the batch entered [`QueryService::submit`] — the boundary
    /// between client-side batch formation and queue wait.
    submitted_to_queue: Instant,
}

/// The per-class latency histograms: the end-to-end total plus its
/// stage components, all nanoseconds. `total` keeps exemplars so
/// `serve.latency.<class>.p999` links to a concrete traced request.
struct LatencySet {
    /// Submit → accounted (the number admission control protects).
    total: Histogram,
    /// Submit → popped by a worker (batch formation + queue wait;
    /// under [`AdmissionPolicy::Defer`] this includes the backpressure
    /// block).
    queue_wait: Histogram,
    /// Popped → snapshot pinned (snapshot contention).
    pin_wait: Histogram,
    /// Pinned → batch executed (service time, whole batch).
    exec: Histogram,
    /// Requests of this class dropped for deadline expiry in queue.
    deadline_exceeded: AtomicU64,
    /// Answers of this class marked degraded by the ladder.
    degraded: AtomicU64,
}

impl LatencySet {
    fn new() -> LatencySet {
        LatencySet {
            total: Histogram::with_exemplars(),
            queue_wait: Histogram::new(),
            pin_wait: Histogram::new(),
            exec: Histogram::new(),
            deadline_exceeded: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }
}

/// Writer state codes stored in `Shared::writer_state` — see
/// [`WriterState::code`].
const WRITER_NOT_SPAWNED: u64 = 0;
const WRITER_RUNNING: u64 = 1;
const WRITER_FINISHED: u64 = 2;
const WRITER_PANICKED: u64 = 3;

/// Sentinel for "no writer epoch recorded yet".
const NO_WRITER_EPOCH: u64 = u64::MAX;

/// Why a worker's pop loop ended — the supervisor's respawn signal.
enum WorkerExit {
    /// The queue closed and drained: shutdown.
    Drained,
    /// A batch panicked (caught); the thread retires so a fresh one —
    /// with fresh scratch — can replace it.
    Panicked,
}

/// State shared by submitters, workers, the writer, and the supervisor.
struct Shared<D: Data> {
    ring: Arc<SnapshotRing<D>>,
    queue: BoundedQueue<WorkItem>,
    /// Per-class latency (indexed by [`QueryClass::index`]).
    latency: [LatencySet; 4],
    /// The admission cost model, fed by every executed request.
    cost: CostModel,
    /// Request tracing sink: disabled by default, attached via
    /// [`QueryService::with_telemetry`]. When enabled, workers emit a
    /// linked span chain (request → admitted/queued/pinned/executed/
    /// responded) for every request.
    telemetry: Telemetry,
    /// Degradation ladder shape (immutable copy of the config).
    degrade: DegradeConfig,
    /// Failure injection (immutable copy of the config).
    fail: FailPoints,
    /// Configured worker count (the cost model divides backlog by it).
    workers_configured: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    /// Completed with the deadline still unexpired (deadline-free
    /// requests count; this over submitted is the bench's in-deadline
    /// fraction).
    completed_in_deadline: AtomicU64,
    shed: AtomicU64,
    /// Shed split by reason: queue at capacity vs. cost prediction.
    shed_depth: AtomicU64,
    shed_predicted: AtomicU64,
    /// Requests dropped at pop time for deadline expiry.
    deadline_exceeded: AtomicU64,
    /// Answers marked degraded / carrying a partial cursor.
    degraded: AtomicU64,
    partial: AtomicU64,
    batches: AtomicU64,
    /// Batches popped, in pop order — the worker fail point's clock.
    batches_popped: AtomicU64,
    /// Current degradation level (the supervisor writes, workers read).
    degrade_level: AtomicU64,
    degrade_transitions: AtomicU64,
    /// Supervision counters.
    workers_alive: AtomicU64,
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    quarantined: AtomicBool,
    /// Writer lifecycle ([`WRITER_NOT_SPAWNED`] etc.).
    writer_state: AtomicU64,
    /// Last epoch the writer published ([`NO_WRITER_EPOCH`] = none).
    writer_last_epoch: AtomicU64,
    /// Order-independent XOR fold of completed result checksums —
    /// *full-fidelity `Ok` answers only*, so replay comparisons stay
    /// valid under chaos and degraded runs.
    result_fold: AtomicU64,
}

/// The concurrent spatial query service. Owns the supervisor (which
/// owns the worker pool) and (optionally) the writer thread; dropping
/// it shuts everything down.
pub struct QueryService<D: Data> {
    shared: Arc<Shared<D>>,
    admission: AdmissionPolicy,
    max_backlog: Option<Duration>,
    supervisor: Option<JoinHandle<WorkerJoinStats>>,
    stop_supervisor: Arc<AtomicBool>,
    writer: Option<JoinHandle<()>>,
    stop_writer: Arc<AtomicBool>,
    sampler: Option<JoinHandle<()>>,
    stop_sampler: Arc<AtomicBool>,
}

/// The columns [`QueryService::spawn_flight_sampler`] records, in row
/// order. `qps` is the completed-query rate over the last interval.
pub const FLIGHT_SERIES: &[&str] = &[
    "queue_depth",
    "qps",
    "completed",
    "shed",
    "epochs_published",
    "pin_retries",
    "writer_stalls",
    "deadline_exceeded",
    "degrade_level",
    "worker_respawns",
    "stale_serving",
];

impl<D: Data> QueryService<D> {
    /// Starts the worker pool under its supervisor. No snapshot exists
    /// yet: publish one (or spawn a writer) before submitting.
    pub fn new(config: ServeConfig) -> QueryService<D> {
        QueryService::with_telemetry(config, Telemetry::disabled())
    }

    /// [`QueryService::new`] with request tracing attached: when
    /// `telemetry` is enabled, every completed request leaves a causal
    /// span chain (root `request` span + admitted/queued/pinned/
    /// executed/responded children) on its worker's track, and latency
    /// exemplars carry the root span id.
    pub fn with_telemetry(config: ServeConfig, telemetry: Telemetry) -> QueryService<D> {
        let shared = Arc::new(Shared {
            ring: SnapshotRing::new(config.ring_capacity),
            queue: BoundedQueue::new(config.queue_capacity),
            latency: [LatencySet::new(), LatencySet::new(), LatencySet::new(), LatencySet::new()],
            cost: CostModel::new(),
            telemetry,
            degrade: config.degrade,
            fail: config.fail,
            workers_configured: config.workers,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            completed_in_deadline: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            shed_depth: AtomicU64::new(0),
            shed_predicted: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            partial: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batches_popped: AtomicU64::new(0),
            degrade_level: AtomicU64::new(0),
            degrade_transitions: AtomicU64::new(0),
            workers_alive: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            quarantined: AtomicBool::new(false),
            writer_state: AtomicU64::new(WRITER_NOT_SPAWNED),
            writer_last_epoch: AtomicU64::new(NO_WRITER_EPOCH),
            result_fold: AtomicU64::new(0),
        });
        let handles: Vec<JoinHandle<WorkerExit>> = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        let stop_supervisor = Arc::new(AtomicBool::new(false));
        let supervisor = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop_supervisor);
            let interval = config.supervision_interval;
            let respawn_limit = config.respawn_limit;
            Some(std::thread::spawn(move || {
                supervisor_loop(shared, handles, stop, interval, respawn_limit)
            }))
        };
        QueryService {
            shared,
            admission: config.admission,
            max_backlog: config.max_backlog,
            supervisor,
            stop_supervisor,
            writer: None,
            stop_writer: Arc::new(AtomicBool::new(false)),
            sampler: None,
            stop_sampler: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Spawns the flight-recorder sampler: every `interval` it pushes
    /// one [`FLIGHT_SERIES`] row into `recorder`, plus a final row at
    /// shutdown. No-op wiring when the recorder is disabled — the
    /// thread still runs but samples vanish.
    ///
    /// # Panics
    /// If a sampler was already spawned.
    pub fn spawn_flight_sampler(&mut self, recorder: FlightRecorder, interval: Duration) {
        assert!(self.sampler.is_none(), "flight sampler already spawned");
        let shared = Arc::clone(&self.shared);
        let stop = Arc::clone(&self.stop_sampler);
        self.sampler = Some(std::thread::spawn(move || {
            let mut last = Instant::now();
            let mut last_completed = shared.completed.load(Relaxed);
            loop {
                let stopping = stop.load(Relaxed);
                let completed = shared.completed.load(Relaxed);
                let dt = last.elapsed().as_secs_f64();
                let qps = if dt > 0.0 { (completed - last_completed) as f64 / dt } else { 0.0 };
                last = Instant::now();
                last_completed = completed;
                let ring = shared.ring.stats();
                let stale = shared.writer_state.load(Relaxed) == WRITER_PANICKED;
                recorder.sample(&[
                    shared.queue.len() as f64,
                    qps,
                    completed as f64,
                    shared.shed.load(Relaxed) as f64,
                    ring.published as f64,
                    ring.pin_retries as f64,
                    ring.writer_stalls as f64,
                    shared.deadline_exceeded.load(Relaxed) as f64,
                    shared.degrade_level.load(Relaxed) as f64,
                    shared.worker_respawns.load(Relaxed) as f64,
                    stale as u64 as f64,
                ]);
                if stopping {
                    return;
                }
                std::thread::sleep(interval);
            }
        }));
    }

    /// The snapshot ring (for direct pinning, e.g. replay audits).
    pub fn ring(&self) -> &Arc<SnapshotRing<D>> {
        &self.shared.ring
    }

    /// Publishes a snapshot directly (no writer thread); returns its
    /// epoch. This is also how an embedding simulation feeds the
    /// service from a `Framework` snapshot hook.
    pub fn publish(&self, trees: Vec<BuiltTree<D>>, universe: BoundingBox) -> u64 {
        self.shared.ring.publish(trees, universe)
    }

    /// The epoch queries are currently answered against.
    pub fn current_epoch(&self) -> Option<u64> {
        self.shared.ring.head_epoch()
    }

    /// Pins the current snapshot (replay audits, ad-hoc queries).
    pub fn pin(&self) -> Option<PinnedSnapshot<D>> {
        self.shared.ring.pin()
    }

    /// The admission cost model (read-only: predictions and counters).
    pub fn cost_model(&self) -> &CostModel {
        &self.shared.cost
    }

    /// Submits a batch. Answers arrive on `reply` (or nowhere, for
    /// fire-and-forget). Fails fast with [`ServeError::NotReady`]
    /// before the first snapshot, [`ServeError::Overloaded`] when the
    /// queue is full under `Shed`/`CostAware`,
    /// [`ServeError::OverBudget`] when the cost model predicts the
    /// batch cannot meet its deadline (or the backlog bound), and
    /// [`ServeError::ShuttingDown`] after shutdown.
    pub fn submit(
        &self,
        requests: Vec<Request>,
        reply: Option<Sender<Vec<Response>>>,
    ) -> Result<(), ServeError> {
        if self.shared.ring.head_epoch().is_none() {
            return Err(ServeError::NotReady);
        }
        let n = requests.len() as u64;
        let mut batch_cost = 0u64;
        if self.admission == AdmissionPolicy::CostAware {
            let Some(pin) = self.shared.ring.pin() else {
                return Err(ServeError::NotReady);
            };
            let now = Instant::now();
            let mut earliest_deadline: Option<Instant> = None;
            for r in &requests {
                let subtree = entry_subtree(&pin.trees, r.query.anchor());
                let population = pin.trees[subtree].particles.len();
                batch_cost += self.shared.cost.predict(r.query.class(), population) as u64;
                if let Some(d) = r.deadline {
                    earliest_deadline = Some(earliest_deadline.map_or(d, |e: Instant| e.min(d)));
                }
            }
            drop(pin);
            // Backlog + this batch, divided across the pool: the
            // predicted wall-clock until the batch completes.
            let pool = self.shared.workers_configured.max(1) as u64;
            let predicted_ns = (self.shared.queue.cost() + batch_cost) / pool;
            let budget_ns = earliest_deadline
                .map(|d| d.saturating_duration_since(now).as_nanos() as u64)
                .or(self.max_backlog.map(|b| b.as_nanos() as u64));
            if let Some(budget_ns) = budget_ns {
                if predicted_ns > budget_ns {
                    self.shared.shed.fetch_add(n, Relaxed);
                    self.shared.shed_predicted.fetch_add(n, Relaxed);
                    return Err(ServeError::OverBudget { predicted_ns, budget_ns });
                }
            }
        }
        let item = WorkItem { requests, reply, submitted_to_queue: Instant::now() };
        let outcome = match self.admission {
            AdmissionPolicy::Shed | AdmissionPolicy::CostAware => {
                self.shared.queue.try_push_costed(item, batch_cost)
            }
            AdmissionPolicy::Defer => self.shared.queue.push_wait_costed(item, batch_cost),
        };
        match outcome {
            Ok(()) => {
                self.shared.submitted.fetch_add(n, Relaxed);
                Ok(())
            }
            Err(PushError::Full(_)) => {
                self.shared.shed.fetch_add(n, Relaxed);
                self.shared.shed_depth.fetch_add(n, Relaxed);
                Err(ServeError::Overloaded {
                    depth: self.shared.queue.len(),
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Spawns the single writer: seeds a master particle array from
    /// `seed_trees`, publishes them as the first snapshot, then runs
    /// `config.iterations` advances — `motion(particles, iteration)`
    /// integrates between advances — publishing each result. The
    /// writer body runs under `catch_unwind`: a panic flips the
    /// service into stale-serving mode (surfaced by
    /// [`QueryService::health`]) instead of poisoning anything.
    /// Returns immediately; the writer's final epoch comes back in the
    /// [`ShutdownReport`].
    ///
    /// # Panics
    /// If a writer was already spawned.
    pub fn spawn_writer(
        &mut self,
        mut maintainer: TreeMaintainer<D>,
        seed_trees: Vec<BuiltTree<D>>,
        mut motion: MotionModel,
        config: WriterConfig,
    ) {
        assert!(self.writer.is_none(), "writer already spawned");
        let shared = Arc::clone(&self.shared);
        let stop = Arc::clone(&self.stop_writer);
        // Publish the seed synchronously so `submit` is ready the
        // moment this returns.
        let mut master: Vec<Particle> =
            seed_trees.iter().flat_map(|t| t.particles.iter().copied()).collect();
        let seed_epoch = shared.ring.publish(seed_trees, maintainer.universe());
        shared.writer_last_epoch.store(seed_epoch, Relaxed);
        shared.writer_state.store(WRITER_RUNNING, Relaxed);
        self.writer = Some(std::thread::spawn(move || {
            let fail = shared.fail;
            let ring = Arc::clone(&shared.ring);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                for iteration in 1..=config.iterations {
                    if stop.load(Relaxed) {
                        break;
                    }
                    let next_epoch = ring.head_epoch().map_or(0, |e| e + 1);
                    if fail.writer_panic_at_epoch == Some(next_epoch) {
                        panic!("injected writer panic before epoch {next_epoch} (fail point)");
                    }
                    motion(&mut master, iteration);
                    let (trees, _round) = maintainer.advance(std::mem::take(&mut master));
                    master = trees.iter().flat_map(|t| t.particles.iter().copied()).collect();
                    let epoch = ring.publish(trees, maintainer.universe());
                    shared.writer_last_epoch.store(epoch, Relaxed);
                    if let Some(pace) = config.pace {
                        std::thread::sleep(pace);
                    }
                }
            }));
            let state = match outcome {
                Ok(()) => WRITER_FINISHED,
                Err(_) => WRITER_PANICKED,
            };
            shared.writer_state.store(state, Relaxed);
        }));
    }

    /// True while the writer thread is still advancing.
    pub fn writer_running(&self) -> bool {
        self.writer.as_ref().is_some_and(|w| !w.is_finished())
    }

    /// A point-in-time health snapshot of the supervision tree:
    /// workers alive/panicked/respawned, writer state, stale-serving
    /// mode and its staleness bound, the degradation level, and the
    /// overload counters.
    pub fn health(&self) -> ServiceHealth {
        let s = &self.shared;
        let writer = match s.writer_state.load(Relaxed) {
            WRITER_RUNNING => WriterState::Running,
            WRITER_FINISHED => WriterState::Finished,
            WRITER_PANICKED => WriterState::Panicked,
            _ => WriterState::NotSpawned,
        };
        let stale_serving = writer == WriterState::Panicked;
        ServiceHealth {
            workers_configured: s.workers_configured,
            workers_alive: s.workers_alive.load(Relaxed) as usize,
            worker_panics: s.worker_panics.load(Relaxed),
            worker_respawns: s.worker_respawns.load(Relaxed),
            quarantined: s.quarantined.load(Relaxed),
            writer,
            stale_serving,
            staleness_epochs: if stale_serving { s.ring.staleness_epochs() } else { 0 },
            last_publish_age: s.ring.publish_age(),
            degrade_level: s.degrade_level.load(Relaxed) as u8,
            deadline_exceeded: s.deadline_exceeded.load(Relaxed),
            shed: s.shed.load(Relaxed),
        }
    }

    /// Current service metrics under `serve.*` names: queue and
    /// snapshot counters, overload and supervision counters
    /// (`serve.deadline_exceeded`, `serve.shed.*`, `serve.degrade.*`,
    /// `serve.worker.*`, `serve.writer.state`, `serve.stale_serving`,
    /// `serve.staleness_epochs`), the cost model (`serve.cost.*`), and
    /// per-class latency summaries
    /// (`serve.latency.<class>.{count,mean,p50,p99,p999,max}`, ns) with
    /// their stage components
    /// (`serve.latency.<class>.{queue_wait,pin_wait,exec}.*`), p999
    /// exemplars, and per-class overload counters
    /// (`serve.latency.<class>.{deadline_exceeded,degraded}`). Every
    /// key is present on every run — classes with no traffic export
    /// zero-count snapshots, so the schema is stable for downstream
    /// tooling.
    pub fn metrics(&self) -> MetricsRegistry {
        let s = &self.shared;
        let mut m = MetricsRegistry::new();
        m.set_u64("serve.queries.submitted", s.submitted.load(Relaxed));
        m.set_u64("serve.queries.completed", s.completed.load(Relaxed));
        m.set_u64("serve.queries.completed_in_deadline", s.completed_in_deadline.load(Relaxed));
        m.set_u64("serve.queries.shed", s.shed.load(Relaxed));
        m.set_u64("serve.shed.depth", s.shed_depth.load(Relaxed));
        m.set_u64("serve.shed.predicted", s.shed_predicted.load(Relaxed));
        m.set_u64("serve.deadline_exceeded", s.deadline_exceeded.load(Relaxed));
        m.set_u64("serve.degraded", s.degraded.load(Relaxed));
        m.set_u64("serve.partial", s.partial.load(Relaxed));
        m.set_u64("serve.degrade.level", s.degrade_level.load(Relaxed));
        m.set_u64("serve.degrade.transitions", s.degrade_transitions.load(Relaxed));
        m.set_u64("serve.worker.alive", s.workers_alive.load(Relaxed));
        m.set_u64("serve.worker.panics", s.worker_panics.load(Relaxed));
        m.set_u64("serve.worker.respawns", s.worker_respawns.load(Relaxed));
        m.set_bool("serve.worker.quarantined", s.quarantined.load(Relaxed));
        let health = self.health();
        m.set_u64("serve.writer.state", health.writer.code());
        m.set_bool("serve.stale_serving", health.stale_serving);
        m.set_u64("serve.staleness_epochs", health.staleness_epochs);
        m.set_u64("serve.batches", s.batches.load(Relaxed));
        m.set_u64("serve.queue.depth", s.queue.len() as u64);
        m.set_u64("serve.queue.capacity", s.queue.capacity() as u64);
        m.set_u64("serve.queue.cost_ns", s.queue.cost());
        m.set_u64("serve.epoch", s.ring.head_epoch().unwrap_or(0));
        m.absorb("serve.snapshots", &s.ring.stats());
        m.absorb("serve.cost", &s.cost);
        for class in QueryClass::ALL {
            let lat = &s.latency[class.index()];
            let prefix = format!("serve.latency.{}", class.label());
            m.absorb(&prefix, &lat.total.snapshot());
            m.absorb(&format!("{prefix}.queue_wait"), &lat.queue_wait.snapshot());
            m.absorb(&format!("{prefix}.pin_wait"), &lat.pin_wait.snapshot());
            m.absorb(&format!("{prefix}.exec"), &lat.exec.snapshot());
            m.set_u64(format!("{prefix}.deadline_exceeded"), lat.deadline_exceeded.load(Relaxed));
            m.set_u64(format!("{prefix}.degraded"), lat.degraded.load(Relaxed));
        }
        m
    }

    /// The running XOR fold of completed full-fidelity result
    /// checksums (degraded, partial, and error answers are excluded so
    /// the fold stays comparable across clean/chaos/degraded runs).
    pub fn result_fold(&self) -> u64 {
        self.shared.result_fold.load(SeqCst)
    }

    /// Stops the writer (if any), drains and closes the queue, and
    /// joins every supervised thread — returning how each one ended as
    /// a [`ShutdownReport`] instead of aborting on a late panic.
    /// Idempotent (a second call reports `NotSpawned` everywhere);
    /// also runs on drop.
    pub fn shutdown(&mut self) -> ShutdownReport {
        self.stop_writer.store(true, Relaxed);
        let writer = match self.writer.take() {
            None => JoinOutcome::NotSpawned,
            Some(w) => match w.join() {
                // The writer body catches its own panics and records
                // them in `writer_state`; surface that as the outcome.
                Ok(()) => {
                    if self.shared.writer_state.load(Relaxed) == WRITER_PANICKED {
                        JoinOutcome::Panicked
                    } else {
                        JoinOutcome::Clean
                    }
                }
                Err(_) => JoinOutcome::Panicked,
            },
        };
        self.shared.queue.close();
        self.stop_supervisor.store(true, Relaxed);
        let (workers, supervisor) = match self.supervisor.take() {
            None => (WorkerJoinStats::default(), JoinOutcome::NotSpawned),
            Some(s) => match s.join() {
                Ok(stats) => (stats, JoinOutcome::Clean),
                Err(_) => (WorkerJoinStats::default(), JoinOutcome::Panicked),
            },
        };
        // Stop the sampler last so its final row reflects the drained
        // end state.
        self.stop_sampler.store(true, Relaxed);
        let sampler = match self.sampler.take() {
            None => JoinOutcome::NotSpawned,
            Some(s) => match s.join() {
                Ok(()) => JoinOutcome::Clean,
                Err(_) => JoinOutcome::Panicked,
            },
        };
        let last_epoch = match self.shared.writer_last_epoch.load(Relaxed) {
            NO_WRITER_EPOCH => None,
            e => Some(e),
        };
        ShutdownReport { last_epoch, writer, workers, supervisor, sampler }
    }
}

impl<D: Data> Drop for QueryService<D> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The supervisor: reaps finished workers, respawns panicked ones
/// (bounded by `respawn_limit`, then quarantine), and drives the
/// degradation ladder from queue pressure and miss deltas. Returns the
/// pool's join accounting for the [`ShutdownReport`].
fn supervisor_loop<D: Data>(
    shared: Arc<Shared<D>>,
    mut handles: Vec<JoinHandle<WorkerExit>>,
    stop: Arc<AtomicBool>,
    interval: Duration,
    respawn_limit: u32,
) -> WorkerJoinStats {
    let mut stats = WorkerJoinStats { spawned: handles.len(), ..WorkerJoinStats::default() };
    let mut tracker = PressureTracker::new();
    let mut last_misses = 0u64;
    loop {
        let stopping = stop.load(Relaxed);
        let mut i = 0;
        while i < handles.len() {
            if !handles[i].is_finished() {
                i += 1;
                continue;
            }
            let h = handles.swap_remove(i);
            match h.join() {
                Ok(WorkerExit::Drained) => stats.clean += 1,
                Ok(WorkerExit::Panicked) | Err(_) => {
                    stats.panicked += 1;
                    if !stopping {
                        if shared.worker_respawns.load(Relaxed) < respawn_limit as u64 {
                            shared.worker_respawns.fetch_add(1, Relaxed);
                            let s = Arc::clone(&shared);
                            handles.push(std::thread::spawn(move || worker_loop(s)));
                            stats.spawned += 1;
                        } else {
                            shared.quarantined.store(true, Relaxed);
                        }
                    }
                }
            }
        }
        // One pressure tick: queue-depth fraction plus the shed +
        // deadline-miss delta since the last tick.
        let misses = shared.shed.load(Relaxed) + shared.deadline_exceeded.load(Relaxed);
        let delta = misses.saturating_sub(last_misses);
        last_misses = misses;
        let depth_frac = shared.queue.len() as f64 / shared.queue.capacity() as f64;
        if let Some(level) = tracker.tick(&shared.degrade, depth_frac, delta) {
            shared.degrade_level.store(level as u64, Relaxed);
        }
        shared.degrade_transitions.store(tracker.transitions(), Relaxed);
        if stopping {
            // The queue is closed: remaining workers drain and exit.
            for h in handles.drain(..) {
                match h.join() {
                    Ok(WorkerExit::Drained) => stats.clean += 1,
                    Ok(WorkerExit::Panicked) | Err(_) => stats.panicked += 1,
                }
            }
            return stats;
        }
        std::thread::sleep(interval);
    }
}

/// A worker: pop a batch, drop expired requests, pin the freshest
/// snapshot, answer at the current degradation level under
/// `catch_unwind`, account. With tracing enabled, every stage is
/// timestamped and every request leaves a linked span chain on this
/// worker's track.
fn worker_loop<D: Data>(shared: Arc<Shared<D>>) -> WorkerExit {
    shared.workers_alive.fetch_add(1, Relaxed);
    let exit = worker_loop_inner(&shared);
    shared.workers_alive.fetch_sub(1, Relaxed);
    exit
}

fn worker_loop_inner<D: Data>(shared: &Arc<Shared<D>>) -> WorkerExit {
    let mut scratch = QueryScratch::default();
    let tel = shared.telemetry.clone();
    let traced = tel.is_enabled();
    // Per-request `(entry subtree, exec start, exec end)` slots, filled
    // by the execution observer — always on: the cost model eats the
    // same observations tracing does.
    let mut exec_obs: Vec<Option<(usize, Instant, Instant)>> = Vec::new();
    while let Some(item) = shared.queue.pop() {
        let batch_no = shared.batches_popped.fetch_add(1, Relaxed) + 1;
        let popped = Instant::now();

        // Deadline check before doing any work: expired requests are
        // answered with a structured error, not executed uselessly.
        let mut live: Vec<Request> = Vec::with_capacity(item.requests.len());
        let mut expired: Vec<Response> = Vec::new();
        for req in &item.requests {
            match req.deadline {
                Some(d) if popped >= d => {
                    let late_ns = popped.saturating_duration_since(d).as_nanos() as u64;
                    shared.deadline_exceeded.fetch_add(1, Relaxed);
                    shared.latency[req.query.class().index()]
                        .deadline_exceeded
                        .fetch_add(1, Relaxed);
                    expired.push(Response {
                        client: req.client,
                        seq: req.seq,
                        epoch: 0,
                        result: Err(ServeError::DeadlineExceeded { late_ns }),
                        degraded: false,
                        partial: None,
                    });
                }
                _ => live.push(*req),
            }
        }
        if live.is_empty() {
            shared.batches.fetch_add(1, Relaxed);
            if let Some(reply) = item.reply {
                let _ = reply.send(expired);
            }
            continue;
        }

        // `submit` refuses work before the first publish, so a pin is
        // always available here.
        let Some(pin) = shared.ring.pin() else { continue };
        let pinned = Instant::now();
        let level = shared.degrade_level.load(Relaxed) as u8;
        let inject = shared.fail.worker_panic_at_batch == Some(batch_no);

        exec_obs.clear();
        exec_obs.resize(live.len(), None);
        let executed = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("injected worker panic at batch {batch_no} (fail point)");
            }
            let mut observe = |i: usize, subtree: usize, t0: Instant, t1: Instant| {
                exec_obs[i] = Some((subtree, t0, t1))
            };
            execute_batch_degraded(
                &pin,
                &live,
                &mut scratch,
                &shared.degrade,
                level,
                Some(&mut observe),
            )
        }));

        let responses = match executed {
            Ok(responses) => responses,
            Err(_) => {
                // The batch panicked: answer every live request with a
                // structured internal error, then retire this worker —
                // its scratch may be poisoned; the supervisor respawns
                // a fresh one.
                shared.worker_panics.fetch_add(1, Relaxed);
                shared.batches.fetch_add(1, Relaxed);
                drop(pin);
                let mut answers = expired;
                answers.extend(live.iter().map(|req| Response {
                    client: req.client,
                    seq: req.seq,
                    epoch: 0,
                    result: Err(ServeError::WorkerPanicked),
                    degraded: false,
                    partial: None,
                }));
                if let Some(reply) = item.reply {
                    let _ = reply.send(answers);
                }
                return WorkerExit::Panicked;
            }
        };

        // Feed the cost model while the pin still resolves subtree
        // populations. Each request is charged its own kernel time plus
        // an equal share of the batch's non-kernel wall (pop, deadline
        // filtering, pin wait, dispatch): admission predicts *service*
        // time, and on microsecond kernels the fixed batch overheads
        // dominate — feeding bare kernel durations makes the model
        // over-admit and admitted requests expire in queue.
        let batch_wall = Instant::now().saturating_duration_since(popped).as_nanos() as u64;
        let kernel_total: u64 = exec_obs
            .iter()
            .flatten()
            .map(|(_, t0, t1)| t1.saturating_duration_since(*t0).as_nanos() as u64)
            .sum();
        let overhead_share = batch_wall.saturating_sub(kernel_total) / live.len() as u64;
        for (i, req) in live.iter().enumerate() {
            if let Some((subtree, t0, t1)) = exec_obs[i] {
                let population = pin.trees[subtree].particles.len();
                let ns = t1.saturating_duration_since(t0).as_nanos() as u64;
                shared.cost.observe(req.query.class(), population, ns + overhead_share);
            }
        }
        drop(pin); // release the slot before reply/accounting

        let executed_at = Instant::now();
        let now = Instant::now();
        let track = Track { rank: 0, worker: tel.thread_slot() };
        let mut fold = 0u64;
        let mut in_deadline = 0u64;
        for (i, req) in live.iter().enumerate() {
            let resp = &responses[i];
            if resp.degraded {
                shared.degraded.fetch_add(1, Relaxed);
                shared.latency[req.query.class().index()].degraded.fetch_add(1, Relaxed);
            }
            if resp.partial.is_some() {
                shared.partial.fetch_add(1, Relaxed);
            }
            fold ^= checksum_fold(resp);
            if req.deadline.is_none_or(|d| now <= d) {
                in_deadline += 1;
            }
            let total = now.saturating_duration_since(req.submitted_at);
            let queue_wait = popped.saturating_duration_since(req.submitted_at);
            let pin_wait = pinned.saturating_duration_since(popped);
            let exec = executed_at.saturating_duration_since(pinned);
            let lat = &shared.latency[req.query.class().index()];
            let rid = req.id();
            let mut root_span = 0u64;
            if traced {
                // Root span plus one child per stage, all linked by id —
                // the queued→admitted→pinned→executed→responded chain
                // `paratreet-analyze` rebuilds per request.
                root_span = tel.next_span_id();
                let submitted = tel.us_of(req.submitted_at);
                let entered = tel.us_of(item.submitted_to_queue);
                let popped_us = tel.us_of(popped);
                let pinned_us = tel.us_of(pinned);
                let executed_us = tel.us_of(executed_at);
                let now_us = tel.us_of(now);
                let root = SpanLink { id: Some(root_span), parent: None, request: Some(rid) };
                let child = |id: u64| SpanLink {
                    id: Some(id),
                    parent: Some(root_span),
                    request: Some(rid),
                };
                tel.span_linked(track, "request", submitted, now_us - submitted, None, root);
                tel.span_linked(
                    track,
                    "admitted",
                    submitted,
                    entered - submitted,
                    None,
                    child(tel.next_span_id()),
                );
                tel.span_linked(
                    track,
                    "queued",
                    entered,
                    popped_us - entered,
                    None,
                    child(tel.next_span_id()),
                );
                tel.span_linked(
                    track,
                    "pinned",
                    popped_us,
                    pinned_us - popped_us,
                    None,
                    child(tel.next_span_id()),
                );
                if let Some((subtree, t0, t1)) = exec_obs[i] {
                    tel.span_linked(
                        track,
                        "executed",
                        tel.us_of(t0),
                        tel.us_of(t1) - tel.us_of(t0),
                        Some(subtree as u64),
                        child(tel.next_span_id()),
                    );
                }
                tel.span_linked(
                    track,
                    "responded",
                    executed_us,
                    now_us - executed_us,
                    None,
                    child(tel.next_span_id()),
                );
            }
            lat.total.record_traced(total.as_nanos() as u64, rid, root_span);
            lat.queue_wait.record(queue_wait.as_nanos() as u64);
            lat.pin_wait.record(pin_wait.as_nanos() as u64);
            lat.exec.record(exec.as_nanos() as u64);
        }
        shared.result_fold.fetch_xor(fold, SeqCst);
        shared.batches.fetch_add(1, Relaxed);
        shared.completed.fetch_add(live.len() as u64, Relaxed);
        shared.completed_in_deadline.fetch_add(in_deadline, Relaxed);
        if let Some(reply) = item.reply {
            let mut answers = expired;
            answers.extend(responses);
            // The client may have gone away (load generator finished);
            // that is not the worker's problem.
            let _ = reply.send(answers);
        }
    }
    WorkerExit::Drained
}
