//! Query requests, results, and batch execution against one snapshot.
//!
//! [`execute_batch`] is the *pure* core of the service: given a
//! [`SnapshotData`] and a batch of requests it produces responses with
//! no clocks, queues, or threads involved. The replay tests lean on
//! this purity — the same snapshot and batch always yield bit-identical
//! responses, which is what makes pinned-epoch serving auditable.

use crate::snapshot::SnapshotData;
use paratreet_geometry::{BoundingBox, Vec3};
use paratreet_tree::query::{
    ball_query_with, entry_subtree, knn_query_with, range_query_with, raycast_with,
};
use paratreet_tree::{Data, Neighbor, QueryScratch, RayHit};
use std::time::Instant;

/// The query classes the service answers, used to key latency
/// histograms and traffic mixes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// k nearest neighbours of a point.
    Knn,
    /// Everything within a radius of a point.
    Ball,
    /// Everything inside an axis-aligned box.
    Range,
    /// First particle along a ray.
    Ray,
}

impl QueryClass {
    /// All classes, in histogram-index order.
    pub const ALL: [QueryClass; 4] =
        [QueryClass::Knn, QueryClass::Ball, QueryClass::Range, QueryClass::Ray];

    /// Stable metric-name segment.
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::Knn => "knn",
            QueryClass::Ball => "ball",
            QueryClass::Range => "range",
            QueryClass::Ray => "ray",
        }
    }

    /// Index into per-class arrays (matches [`QueryClass::ALL`]).
    pub fn index(self) -> usize {
        match self {
            QueryClass::Knn => 0,
            QueryClass::Ball => 1,
            QueryClass::Range => 2,
            QueryClass::Ray => 3,
        }
    }
}

/// One spatial query.
#[derive(Clone, Copy, Debug)]
pub enum Query {
    /// The `k` nearest particles to `pos`.
    Knn {
        /// Query point.
        pos: Vec3,
        /// Neighbour count.
        k: usize,
    },
    /// Every particle within `radius` of `center`.
    Ball {
        /// Ball center.
        center: Vec3,
        /// Ball radius.
        radius: f64,
    },
    /// Ids of every particle inside `bbox`.
    Range {
        /// Query box.
        bbox: BoundingBox,
    },
    /// The first particle within `radius` of the ray.
    Ray {
        /// Ray origin.
        origin: Vec3,
        /// Ray direction (normalized by the kernel).
        dir: Vec3,
        /// Capture radius around the ray.
        radius: f64,
        /// Maximum ray parameter.
        t_max: f64,
    },
}

impl Query {
    /// The class this query is accounted under.
    pub fn class(&self) -> QueryClass {
        match self {
            Query::Knn { .. } => QueryClass::Knn,
            Query::Ball { .. } => QueryClass::Ball,
            Query::Range { .. } => QueryClass::Range,
            Query::Ray { .. } => QueryClass::Ray,
        }
    }

    /// The point the batcher groups by: where the query's first descent
    /// enters the forest.
    pub fn anchor(&self) -> Vec3 {
        match self {
            Query::Knn { pos, .. } => *pos,
            Query::Ball { center, .. } => *center,
            Query::Range { bbox } => bbox.center(),
            Query::Ray { origin, .. } => *origin,
        }
    }
}

/// A query's answer.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// kNN / ball answers: neighbours ascending by distance.
    Neighbors(Vec<Neighbor>),
    /// Range answers: particle ids ascending.
    Ids(Vec<u64>),
    /// Raycast answer.
    Hit(Option<RayHit>),
}

impl QueryResult {
    /// Number of particles in the answer.
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Neighbors(v) => v.len(),
            QueryResult::Ids(v) => v.len(),
            QueryResult::Hit(h) => h.is_some() as usize,
        }
    }

    /// True when the answer holds no particles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An order-sensitive FNV fold over the result's ids and distance
    /// bit patterns. Two results are replay-identical iff their
    /// checksums (and lengths) agree — the serving tests' equality
    /// currency.
    pub fn checksum(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100_0000_01b3)
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        match self {
            QueryResult::Neighbors(v) => {
                for n in v {
                    h = mix(h, n.id);
                    h = mix(h, n.dist_sq.to_bits());
                }
            }
            QueryResult::Ids(v) => {
                for id in v {
                    h = mix(h, *id);
                }
            }
            QueryResult::Hit(None) => h = mix(h, 0),
            QueryResult::Hit(Some(hit)) => {
                h = mix(h, hit.id);
                h = mix(h, hit.t.to_bits());
            }
        }
        h
    }
}

/// One client request in flight.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Issuing client.
    pub client: u32,
    /// Client-local sequence number.
    pub seq: u32,
    /// The query.
    pub query: Query,
    /// Submission instant — the latency histograms measure from here,
    /// so queue wait counts against the service.
    pub submitted_at: Instant,
}

impl Request {
    /// A request stamped "now".
    pub fn new(client: u32, seq: u32, query: Query) -> Request {
        Request { client, seq, query, submitted_at: Instant::now() }
    }

    /// The request id used in span links and histogram exemplars:
    /// `client << 32 | seq`, unique per request in a run.
    pub fn id(&self) -> u64 {
        ((self.client as u64) << 32) | self.seq as u64
    }
}

/// One answered request.
#[derive(Clone, Debug)]
pub struct Response {
    /// Issuing client (copied from the request).
    pub client: u32,
    /// Client-local sequence number (copied from the request).
    pub seq: u32,
    /// The snapshot epoch the answer was computed against.
    pub epoch: u64,
    /// The answer.
    pub result: QueryResult,
}

/// Runs one query against a forest.
pub fn execute<D: Data>(
    trees: &[paratreet_tree::BuiltTree<D>],
    query: &Query,
    scratch: &mut QueryScratch,
) -> QueryResult {
    match *query {
        Query::Knn { pos, k } => QueryResult::Neighbors(knn_query_with(trees, pos, k, scratch)),
        Query::Ball { center, radius } => {
            QueryResult::Neighbors(ball_query_with(trees, center, radius, scratch))
        }
        Query::Range { bbox } => QueryResult::Ids(range_query_with(trees, &bbox, scratch)),
        Query::Ray { origin, dir, radius, t_max } => {
            QueryResult::Hit(raycast_with(trees, origin, dir, radius, t_max, scratch))
        }
    }
}

/// Answers a batch against one pinned snapshot, grouped by entry
/// subtree: queries whose first descent enters the same Subtree run
/// back-to-back, so the batch walks each arena while it is cache-warm
/// and shares one scratch allocation. The grouping is a stable sort —
/// deterministic for a given snapshot and batch.
pub fn execute_batch<D: Data>(
    snapshot: &SnapshotData<D>,
    requests: &[Request],
    scratch: &mut QueryScratch,
) -> Vec<Response> {
    execute_batch_observed(snapshot, requests, scratch, None)
}

/// Per-request execution observer: called after each request in a batch
/// runs, with `(request index, entry subtree, started, finished)`.
/// Request tracing hooks in here; `None` keeps the pure clock-free path.
pub type ExecObserver<'a> = &'a mut dyn FnMut(usize, usize, Instant, Instant);

/// [`execute_batch`] with an optional per-request observer. The answers
/// are identical with or without one — the observer only *watches* the
/// same entry-subtree-grouped execution order.
pub fn execute_batch_observed<D: Data>(
    snapshot: &SnapshotData<D>,
    requests: &[Request],
    scratch: &mut QueryScratch,
    mut observer: Option<ExecObserver<'_>>,
) -> Vec<Response> {
    let trees = &snapshot.trees;
    let mut order: Vec<(usize, usize)> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| (entry_subtree(trees, r.query.anchor()), i))
        .collect();
    order.sort();
    order
        .into_iter()
        .map(|(subtree, i)| {
            let r = &requests[i];
            let started = observer.is_some().then(Instant::now);
            let result = execute(trees, &r.query, scratch);
            if let (Some(obs), Some(t0)) = (observer.as_mut(), started) {
                obs(i, subtree, t0, Instant::now());
            }
            Response { client: r.client, seq: r.seq, epoch: snapshot.epoch, result }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_particles::gen;
    use paratreet_tree::{CountData, TreeBuilder, TreeType};

    fn snapshot(n: usize, seed: u64) -> SnapshotData<CountData> {
        let ps = gen::clustered(n, 3, seed, 1.0, 1.0);
        let universe = BoundingBox::around(ps.iter().map(|p| p.pos));
        let tree = TreeBuilder::new(TreeType::Octree).bucket_size(8).build(ps, universe);
        SnapshotData::new(0, vec![tree], universe)
    }

    #[test]
    fn batch_answers_match_singles_and_keep_identity() {
        let snap = snapshot(500, 3);
        let mut scratch = QueryScratch::default();
        let c = snap.universe.center();
        let reqs = vec![
            Request::new(1, 0, Query::Knn { pos: c, k: 5 }),
            Request::new(2, 7, Query::Ball { center: c, radius: 0.3 }),
            Request::new(3, 1, Query::Range { bbox: BoundingBox::cube(c, 0.2) }),
            Request::new(
                4,
                2,
                Query::Ray {
                    origin: snap.universe.lo,
                    dir: c - snap.universe.lo,
                    radius: 0.05,
                    t_max: 10.0,
                },
            ),
        ];
        let responses = execute_batch(&snap, &reqs, &mut scratch);
        assert_eq!(responses.len(), reqs.len());
        for resp in &responses {
            let req = reqs
                .iter()
                .find(|r| r.client == resp.client && r.seq == resp.seq)
                .expect("response keeps request identity");
            let single = execute(&snap.trees, &req.query, &mut scratch);
            assert_eq!(resp.result, single);
            assert_eq!(resp.epoch, 0);
        }
    }

    #[test]
    fn batch_execution_is_deterministic() {
        let snap = snapshot(400, 9);
        let reqs: Vec<Request> = (0..50)
            .map(|i| {
                let f = i as f64 / 50.0;
                Request::new(
                    i,
                    0,
                    Query::Knn {
                        pos: snap.universe.lo + (snap.universe.hi - snap.universe.lo) * f,
                        k: 4,
                    },
                )
            })
            .collect();
        let a = execute_batch(&snap, &reqs, &mut QueryScratch::default());
        let b = execute_batch(&snap, &reqs, &mut QueryScratch::default());
        let ka: Vec<u64> = a.iter().map(|r| r.result.checksum()).collect();
        let kb: Vec<u64> = b.iter().map(|r| r.result.checksum()).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn checksum_distinguishes_results() {
        let a = QueryResult::Ids(vec![1, 2, 3]);
        let b = QueryResult::Ids(vec![1, 2, 4]);
        let c = QueryResult::Ids(vec![2, 1, 3]);
        assert_ne!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), c.checksum(), "checksum is order-sensitive");
        assert_eq!(a.checksum(), QueryResult::Ids(vec![1, 2, 3]).checksum());
    }
}
