//! The §IV case study at demo scale: a planetesimal disk with an
//! embedded giant planet, evolved with gravity + collision detection on
//! the longest-dimension tree, reporting collisions near the resonances.
//!
//! ```text
//! cargo run --release --example planetesimal_disk -- [n] [steps]
//! ```

use paratreet::core_api::{Configuration, DecompType};
use paratreet_apps::collision::{orbital_period, resonance_radius, DiskSimulation};
use paratreet_particles::gen::{self, DiskParams};
use paratreet_tree::TreeType;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);

    let mut params = DiskParams::default();
    params.body_radius *= 3e4; // inflate cross-sections for demo-scale N
    params.rms_ecc = 0.05;
    let particles = gen::keplerian_disk(n, 3, params);

    // The case study's custom tree: median splits along the longest
    // dimension — never the disk's thin z axis.
    let config = Configuration {
        tree_type: TreeType::LongestDim,
        decomp_type: DecompType::LongestDim,
        bucket_size: 16,
        ..Default::default()
    };
    let dt = orbital_period(params.r_in, params.star_mass) / 50.0;
    let mut sim = DiskSimulation::new(config, particles, dt);

    println!(
        "{n} planetesimals + Jupiter at {} AU; resonances at 3:1 = {:.2}, 2:1 = {:.2}, 5:3 = {:.2} AU",
        params.planet_radius,
        resonance_radius(3, 1, params.planet_radius),
        resonance_radius(2, 1, params.planet_radius),
        resonance_radius(5, 3, params.planet_radius),
    );

    let mut merged = 0usize;
    for step in 0..steps {
        let before = sim.framework.particles().len();
        let events = sim.step();
        merged += before - sim.framework.particles().len();
        if !events.is_empty() {
            for ev in &events {
                println!(
                    "  step {step}: bodies {} + {} collide at r = {:.3} AU (t = {:.2} of step)",
                    ev.a,
                    ev.b,
                    ev.radius,
                    ev.t / dt
                );
            }
        }
    }

    let prof = sim.profile(params.r_in, params.r_out, 8);
    println!("\ncollision counts by heliocentric distance:");
    for (c, count) in prof.bin_centers().iter().zip(&prof.bins) {
        println!("  r = {c:.2} AU: {count}");
    }
    println!(
        "\n{} collisions total, {merged} bodies merged, {} bodies remain",
        prof.total,
        sim.framework.particles().len()
    );
}
