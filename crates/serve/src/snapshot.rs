//! Epoch-stamped RCU-style snapshot publication.
//!
//! The serving layer's writer thread advances the live tree and hands
//! each iteration's flattened forest to a [`SnapshotRing`]; reader
//! (worker) threads answer queries against [`PinnedSnapshot`]s. The
//! protocol is read-copy-update over a fixed ring of slots:
//!
//! * **publish** (single writer): pick the next slot round-robin, mark
//!   it retired, wait for its pin count to drain to zero, replace its
//!   data, stamp the new epoch, then advance the published head.
//! * **pin** (any reader): load the head epoch, increment the target
//!   slot's pin count, then *validate* that the slot still carries that
//!   epoch. On a mismatch (the writer lapped us) unpin and retry.
//!
//! Safety argument (all operations are `SeqCst`): the reader's
//! pin-increment and epoch-validate bracket its access to the slot's
//! data; the writer's retire-store and pin-drain bracket its write. In
//! the SeqCst total order either the reader's increment precedes the
//! writer's drain-load — the writer sees the pin and waits — or the
//! writer's retire-store precedes the reader's validate-load — the
//! reader sees the retired mark and retries. No interleaving lets a
//! reader touch a slot the writer is mutating. On top of that, the slot
//! holds an `Arc<SnapshotData>`: a pinned reader clones it, so even
//! after the slot is recycled the arenas a reader works against cannot
//! be freed under it — epoch pins bound *slot reuse*, the `Arc` bounds
//! *memory lifetime*, and the drop-probe tests assert both.
//!
//! Backpressure: a reader that holds a pin for longer than
//! `capacity - 1` publications forces the writer to stall at the
//! wrap-around (`writer_stalls` counts those episodes). Ring capacity
//! is therefore the snapshot-lag budget granted to slow readers.

use paratreet_geometry::BoundingBox;
use paratreet_telemetry::metrics::{MetricSource, MetricsRegistry};
use paratreet_tree::{BuiltTree, Data};
use std::cell::UnsafeCell;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Sentinel for "no epoch": the head before the first publication, and
/// the retired mark a slot carries while the writer replaces its data.
const NO_EPOCH: u64 = u64::MAX;

/// One published forest: everything a query needs, immutable once
/// published. Queries against the same `SnapshotData` are bit-identical
/// no matter when they run — the replay property the tests pin down.
pub struct SnapshotData<D: Data> {
    /// Publication sequence number (0, 1, 2, … per ring).
    pub epoch: u64,
    /// The flattened per-Subtree arenas of this iteration.
    pub trees: Vec<BuiltTree<D>>,
    /// The universe box the forest was maintained in.
    pub universe: BoundingBox,
    /// Test hook: incremented when this snapshot is dropped (i.e. its
    /// arenas are actually freed), so tests can assert reclamation
    /// never outruns the pins.
    drop_probe: Option<Arc<AtomicU64>>,
}

impl<D: Data> SnapshotData<D> {
    /// A snapshot carrying `trees` for `epoch`.
    pub fn new(epoch: u64, trees: Vec<BuiltTree<D>>, universe: BoundingBox) -> SnapshotData<D> {
        SnapshotData { epoch, trees, universe, drop_probe: None }
    }

    /// Attaches a drop probe (tests): `probe` is incremented exactly
    /// once, when the snapshot — and with it the tree arenas — is freed.
    pub fn with_drop_probe(mut self, probe: Arc<AtomicU64>) -> Self {
        self.drop_probe = Some(probe);
        self
    }

    /// Total particles across the forest.
    pub fn n_particles(&self) -> usize {
        self.trees.iter().map(|t| t.particles.len()).sum()
    }
}

impl<D: Data> Drop for SnapshotData<D> {
    fn drop(&mut self) {
        if let Some(p) = &self.drop_probe {
            p.fetch_add(1, SeqCst);
        }
    }
}

/// One ring slot. `data` is only touched by the writer after the slot
/// is retired and drained, and by readers between a successful
/// pin-validate and the corresponding unpin — see the module docs.
struct Slot<D: Data> {
    epoch: AtomicU64,
    pins: AtomicUsize,
    data: UnsafeCell<Option<Arc<SnapshotData<D>>>>,
}

// The pin/retire protocol serialises all access to `data` (module
// docs); every other field is atomic.
unsafe impl<D: Data> Sync for Slot<D> {}

/// Counters describing a ring's life so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Snapshots published.
    pub published: u64,
    /// Slot overwrites: retired snapshots whose *ring* reference was
    /// released (the arenas free once the last pinned reader lets go).
    pub reclaimed: u64,
    /// Reader pin attempts that lost the race to a concurrent publish
    /// and retried.
    pub pin_retries: u64,
    /// Publish calls that had to wait for a lagging reader to unpin
    /// the wrap-around slot.
    pub writer_stalls: u64,
}

impl MetricSource for RingStats {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.published"), self.published);
        registry.set_u64(format!("{prefix}.reclaimed"), self.reclaimed);
        registry.set_u64(format!("{prefix}.pin_retries"), self.pin_retries);
        registry.set_u64(format!("{prefix}.writer_stalls"), self.writer_stalls);
    }
}

/// The publish wall clock: when the head last advanced and how fast it
/// has been advancing. This is what lets stale-serving mode turn "the
/// writer died" into a *bound* — publications a healthy writer would
/// have made since the last real one.
#[derive(Clone, Copy, Debug, Default)]
struct PublishClock {
    last: Option<Instant>,
    /// EWMA of the inter-publish interval, microseconds (0 until the
    /// second publish).
    interval_us: f64,
}

/// Fixed-capacity single-writer multi-reader snapshot ring.
pub struct SnapshotRing<D: Data> {
    slots: Box<[Slot<D>]>,
    /// The latest fully published epoch ([`NO_EPOCH`] before the first).
    head: AtomicU64,
    /// Serialises publishers; publish is designed single-writer, the
    /// lock turns an accidental second writer into a wait, not a race.
    writer: Mutex<()>,
    clock: Mutex<PublishClock>,
    published: AtomicU64,
    reclaimed: AtomicU64,
    pin_retries: AtomicU64,
    writer_stalls: AtomicU64,
}

impl<D: Data> SnapshotRing<D> {
    /// An empty ring with `capacity` slots (min 2: the head slot plus
    /// one the writer can prepare).
    pub fn new(capacity: usize) -> Arc<SnapshotRing<D>> {
        let capacity = capacity.max(2);
        let slots = (0..capacity)
            .map(|_| Slot {
                epoch: AtomicU64::new(NO_EPOCH),
                pins: AtomicUsize::new(0),
                data: UnsafeCell::new(None),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(SnapshotRing {
            slots,
            head: AtomicU64::new(NO_EPOCH),
            writer: Mutex::new(()),
            clock: Mutex::new(PublishClock::default()),
            published: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            pin_retries: AtomicU64::new(0),
            writer_stalls: AtomicU64::new(0),
        })
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The latest published epoch, or `None` before the first publish.
    pub fn head_epoch(&self) -> Option<u64> {
        match self.head.load(SeqCst) {
            NO_EPOCH => None,
            e => Some(e),
        }
    }

    /// Publishes the next snapshot; returns its epoch. See
    /// [`SnapshotRing::publish_with`] for the protocol.
    pub fn publish(&self, trees: Vec<BuiltTree<D>>, universe: BoundingBox) -> u64 {
        self.publish_with(|epoch| SnapshotData::new(epoch, trees, universe))
    }

    /// Publishes the snapshot `make(next_epoch)` builds. Blocks while a
    /// lagging reader still pins the slot being recycled (wrap-around
    /// backpressure).
    pub fn publish_with(&self, make: impl FnOnce(u64) -> SnapshotData<D>) -> u64 {
        let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let head = self.head.load(SeqCst);
        let epoch = if head == NO_EPOCH { 0 } else { head + 1 };
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];

        // Retire the slot first: readers racing us on a stale head now
        // fail their validate and retry against the real head.
        slot.epoch.store(NO_EPOCH, SeqCst);
        let mut stalled = false;
        while slot.pins.load(SeqCst) != 0 {
            if !stalled {
                stalled = true;
                self.writer_stalls.fetch_add(1, SeqCst);
            }
            std::thread::yield_now();
        }

        // Drained: no reader holds the slot and none can re-pin it (the
        // head no longer names it, and its epoch is retired).
        let fresh = Arc::new(make(epoch));
        let old = unsafe { (*slot.data.get()).replace(fresh) };
        if old.is_some() {
            self.reclaimed.fetch_add(1, SeqCst);
        }
        drop(old); // arenas free here unless a pinned reader still holds a clone

        slot.epoch.store(epoch, SeqCst);
        self.head.store(epoch, SeqCst);
        self.published.fetch_add(1, SeqCst);
        {
            let now = Instant::now();
            let mut clock = self.clock.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(last) = clock.last {
                let us = now.duration_since(last).as_micros() as f64;
                clock.interval_us = if clock.interval_us == 0.0 {
                    us
                } else {
                    clock.interval_us + 0.2 * (us - clock.interval_us)
                };
            }
            clock.last = Some(now);
        }
        epoch
    }

    /// Wall-clock age of the newest publication (`None` before the
    /// first).
    pub fn publish_age(&self) -> Option<Duration> {
        self.clock.lock().unwrap_or_else(PoisonError::into_inner).last.map(|t| t.elapsed())
    }

    /// EWMA of the inter-publish interval (`None` until two
    /// publications establish a cadence).
    pub fn publish_interval(&self) -> Option<Duration> {
        let us = self.clock.lock().unwrap_or_else(PoisonError::into_inner).interval_us;
        (us > 0.0).then(|| Duration::from_micros(us as u64))
    }

    /// Publications a writer at the observed cadence would have made
    /// since the last real one — the staleness bound stale-serving mode
    /// surfaces. 0 while a cadence is unknown or the head is fresh.
    pub fn staleness_epochs(&self) -> u64 {
        match (self.publish_age(), self.publish_interval()) {
            (Some(age), Some(interval)) if !interval.is_zero() => {
                (age.as_secs_f64() / interval.as_secs_f64()) as u64
            }
            _ => 0,
        }
    }

    /// Pins the latest published snapshot, or `None` before the first
    /// publish. The returned guard keeps the snapshot's slot from being
    /// recycled (and, via its `Arc`, the arenas alive) until dropped.
    pub fn pin(self: &Arc<Self>) -> Option<PinnedSnapshot<D>> {
        loop {
            let epoch = self.head.load(SeqCst);
            if epoch == NO_EPOCH {
                return None;
            }
            let idx = (epoch % self.slots.len() as u64) as usize;
            let slot = &self.slots[idx];
            slot.pins.fetch_add(1, SeqCst);
            if slot.epoch.load(SeqCst) == epoch {
                // Validated while pinned: the writer cannot be inside
                // this slot (module docs), so the Arc clone is safe.
                let data = unsafe {
                    (*slot.data.get()).as_ref().expect("validated slot holds data").clone()
                };
                return Some(PinnedSnapshot {
                    ring: Arc::clone(self),
                    slot: idx,
                    data: Some(data),
                });
            }
            slot.pins.fetch_sub(1, SeqCst);
            self.pin_retries.fetch_add(1, SeqCst);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> RingStats {
        RingStats {
            published: self.published.load(SeqCst),
            reclaimed: self.reclaimed.load(SeqCst),
            pin_retries: self.pin_retries.load(SeqCst),
            writer_stalls: self.writer_stalls.load(SeqCst),
        }
    }
}

/// A reader's lease on one snapshot. Dereferences to [`SnapshotData`];
/// dropping it releases the Arc first, then the slot pin, so "pinned"
/// always implies "arenas alive".
pub struct PinnedSnapshot<D: Data> {
    ring: Arc<SnapshotRing<D>>,
    slot: usize,
    data: Option<Arc<SnapshotData<D>>>,
}

impl<D: Data> PinnedSnapshot<D> {
    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.data.as_ref().expect("held until drop").epoch
    }
}

impl<D: Data> Deref for PinnedSnapshot<D> {
    type Target = SnapshotData<D>;
    fn deref(&self) -> &SnapshotData<D> {
        self.data.as_ref().expect("held until drop")
    }
}

impl<D: Data> Drop for PinnedSnapshot<D> {
    fn drop(&mut self) {
        self.data.take(); // release the Arc before the pin
        self.ring.slots[self.slot].pins.fetch_sub(1, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_geometry::Vec3;
    use paratreet_tree::CountData;

    fn ring() -> Arc<SnapshotRing<CountData>> {
        SnapshotRing::new(4)
    }

    /// A universe box whose lower corner encodes the epoch, so readers
    /// can check the snapshot they pinned is internally consistent.
    fn stamped_box(epoch: u64) -> BoundingBox {
        BoundingBox::cube(Vec3::splat(epoch as f64), 0.5)
    }

    #[test]
    fn pin_before_first_publish_is_none() {
        let r = ring();
        assert!(r.pin().is_none());
        assert_eq!(r.head_epoch(), None);
    }

    #[test]
    fn epochs_increment_and_head_tracks() {
        let r = ring();
        for want in 0..10u64 {
            let got = r.publish(Vec::new(), stamped_box(want));
            assert_eq!(got, want);
            assert_eq!(r.head_epoch(), Some(want));
            let pin = r.pin().unwrap();
            assert_eq!(pin.epoch(), want);
            assert_eq!(pin.universe.lo, stamped_box(want).lo);
        }
        let s = r.stats();
        assert_eq!(s.published, 10);
        // Capacity 4: epochs 4..9 each overwrote an older slot.
        assert_eq!(s.reclaimed, 6);
    }

    #[test]
    fn pinned_snapshot_is_not_freed_until_unpinned() {
        let r = ring();
        let probe = Arc::new(AtomicU64::new(0));
        let p0 = probe.clone();
        r.publish_with(move |e| {
            SnapshotData::new(e, Vec::new(), stamped_box(e)).with_drop_probe(p0)
        });
        let pin = r.pin().unwrap();
        assert_eq!(pin.epoch(), 0);

        // Fill the rest of the ring: slot 0 is not yet recycled.
        for _ in 1..4 {
            r.publish(Vec::new(), BoundingBox::cube(Vec3::ZERO, 1.0));
        }
        assert_eq!(probe.load(SeqCst), 0, "epoch 0 freed while pinned");

        // Epoch 4 wants slot 0: the writer must wait for the pin, so
        // publish from another thread, release the pin, then join.
        let r2 = Arc::clone(&r);
        let publisher =
            std::thread::spawn(move || r2.publish(Vec::new(), BoundingBox::cube(Vec3::ZERO, 1.0)));
        // Give the publisher a chance to reach the drain loop.
        while r.stats().writer_stalls == 0 {
            std::thread::yield_now();
        }
        assert_eq!(probe.load(SeqCst), 0, "epoch 0 freed while the writer stalls");
        drop(pin);
        assert_eq!(publisher.join().unwrap(), 4);
        assert_eq!(probe.load(SeqCst), 1, "epoch 0 frees once unpinned and recycled");
        assert!(r.stats().writer_stalls >= 1);
    }

    #[test]
    fn unpinned_retired_snapshots_reclaim_eagerly() {
        let r = ring();
        let probe = Arc::new(AtomicU64::new(0));
        let p0 = probe.clone();
        r.publish_with(move |e| {
            SnapshotData::new(e, Vec::new(), stamped_box(e)).with_drop_probe(p0)
        });
        for _ in 1..=4 {
            r.publish(Vec::new(), BoundingBox::cube(Vec3::ZERO, 1.0));
        }
        // Epoch 4 reused slot 0 with nobody pinning: freed immediately.
        assert_eq!(probe.load(SeqCst), 1);
    }

    #[test]
    fn publish_clock_tracks_cadence() {
        let r = ring();
        assert_eq!(r.publish_age(), None);
        assert_eq!(r.publish_interval(), None);
        assert_eq!(r.staleness_epochs(), 0, "no cadence before the second publish");
        r.publish(Vec::new(), stamped_box(0));
        assert!(r.publish_age().is_some());
        assert_eq!(r.publish_interval(), None);
        std::thread::sleep(Duration::from_millis(2));
        r.publish(Vec::new(), stamped_box(1));
        let interval = r.publish_interval().expect("cadence after two publishes");
        assert!(interval >= Duration::from_millis(1));
        // A stalled writer accumulates staleness at the observed cadence.
        std::thread::sleep(interval * 3);
        assert!(r.staleness_epochs() >= 2);
    }

    #[test]
    fn concurrent_readers_always_see_coherent_snapshots() {
        let r: Arc<SnapshotRing<CountData>> = SnapshotRing::new(3);
        let stop = Arc::new(AtomicU64::new(0));
        let seen = Arc::new(AtomicU64::new(0));
        let n_readers = 4;
        let mut readers = Vec::new();
        for _ in 0..n_readers {
            let r = Arc::clone(&r);
            let stop = Arc::clone(&stop);
            let seen = Arc::clone(&seen);
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while stop.load(SeqCst) == 0 {
                    if let Some(pin) = r.pin() {
                        // The epoch stamp and the payload must agree —
                        // a torn slot would break this.
                        assert_eq!(pin.universe.lo, stamped_box(pin.epoch()).lo);
                        assert!(pin.epoch() >= last, "head went backwards");
                        last = pin.epoch();
                        seen.fetch_add(1, SeqCst);
                    }
                }
            }));
        }
        for e in 0..500u64 {
            assert_eq!(r.publish(Vec::new(), stamped_box(e)), e);
        }
        // Keep the head live until every reader has had a chance to
        // observe something (the publishes can outrun thread startup).
        while seen.load(SeqCst) < 100 {
            std::thread::yield_now();
        }
        stop.store(1, SeqCst);
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(r.stats().published, 500);
    }
}
