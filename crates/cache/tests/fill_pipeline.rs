//! Hardening tests for the fetch → serialize → fill → resume pipeline:
//! waiters parked at several depths must all be resumed by one deep fill
//! (the waiter-leak regression), duplicate fills must be idempotent,
//! orphaned fills must be rejected without mutating the cache, and a
//! placeholder-root fill must re-arm the request flag. Each scenario
//! finishes with a full [`CacheTree::audit`] pass.

use paratreet_cache::{CacheError, CacheNode, CacheTree, NodeKind, RequestOutcome, SubtreeSummary};
use paratreet_geometry::NodeKey;
use paratreet_particles::{gen, ParticleVec};
use paratreet_tree::{CountData, TreeBuilder, TreeType};

/// A "home" cache (rank 1) owning all eight root octants and an "away"
/// cache (rank 0) holding only the skeleton of placeholders.
fn make_world(n: usize) -> (CacheTree<CountData>, CacheTree<CountData>) {
    let mut ps = gen::clustered(n, 4, 99, 1.0, 1.0);
    let universe = ps.bounding_box().padded(1e-9).bounding_cube();
    ps.assign_keys(&universe);
    ps.sort_by_sfc_key();

    let home: CacheTree<CountData> = CacheTree::new(1, 3);
    let mut summaries = Vec::new();
    let mut trees = Vec::new();
    for oct in 0..8 {
        let part: Vec<_> =
            ps.iter().copied().filter(|p| universe.octant_of(p.pos) == oct).collect();
        if part.is_empty() {
            continue;
        }
        let builder = TreeBuilder {
            root_key: NodeKey::root().child(oct, 3),
            root_depth: 1,
            parallel: false,
            ..TreeBuilder::new(TreeType::Octree)
        };
        let tree = builder.bucket_size(4).build::<CountData>(part, universe.octant(oct));
        summaries.push(SubtreeSummary {
            key: tree.root().key,
            bbox: tree.root().bbox,
            n_particles: tree.root().n_particles,
            data: tree.root().data,
            home_rank: 1,
        });
        trees.push(tree);
    }
    home.init(&summaries, trees);

    let away: CacheTree<CountData> = CacheTree::new(0, 3);
    away.init(&summaries, vec![]);
    (home, away)
}

/// All placeholder children directly under `node`, biggest first.
fn placeholder_children(node: &CacheNode<CountData>) -> Vec<&CacheNode<CountData>> {
    let mut out: Vec<_> =
        node.children_iter(8).filter(|c| c.kind == NodeKind::Placeholder).collect();
    out.sort_by_key(|c| std::cmp::Reverse(c.n_particles));
    out
}

/// The busiest subtree root on the home rank (deep enough to have
/// placeholder frontiers two fills down).
fn busiest_octant(home: &CacheTree<CountData>) -> NodeKey {
    home.root().unwrap().children_iter(8).max_by_key(|c| c.n_particles).expect("home owns data").key
}

#[test]
fn one_deep_fill_resumes_waiters_parked_at_different_depths() {
    let (home, away) = make_world(4000);
    let k1 = busiest_octant(&home);

    // Materialise two levels under the busiest octant, shallow fills
    // only, leaving placeholder frontiers behind.
    let ph1 = away.lookup(k1).unwrap();
    assert!(matches!(away.request(ph1, 1), RequestOutcome::SendFetch { .. }));
    let out1 = away.insert_fragment(&home.serialize_fragment(k1, 1).unwrap()).unwrap();
    assert_eq!(out1.resumed, vec![(k1, 1)]);

    let level2 = placeholder_children(away.find(k1).unwrap());
    assert!(level2.len() >= 2, "need two depth-2 placeholders, got {}", level2.len());
    let k2 = level2[0].key; // will be fetched shallowly next
    let k2b = level2[1].key; // waiter parks here (depth 2)
    assert!(matches!(away.request(level2[0], 2), RequestOutcome::SendFetch { .. }));
    let out2 = away.insert_fragment(&home.serialize_fragment(k2, 1).unwrap()).unwrap();
    assert_eq!(out2.resumed, vec![(k2, 2)]);

    let level3 = placeholder_children(away.find(k2).unwrap());
    assert!(!level3.is_empty(), "need a depth-3 placeholder under {k2}");
    let k3 = level3[0].key; // waiter parks here (depth 3)

    // Park one waiter at depth 2 and one at depth 3.
    assert!(matches!(away.request(level2[1], 40), RequestOutcome::SendFetch { .. }));
    assert!(matches!(away.request(level3[0], 50), RequestOutcome::SendFetch { .. }));

    // ONE deep fill of the whole octant materialises both parked keys.
    // Its root is already materialised (a duplicate there), but the
    // interior keys are new data — and every waiter they unblock must
    // come back, not just waiters parked on the fragment root.
    let deep = home.serialize_fragment(k1, 64).unwrap();
    let out = away.insert_fragment(&deep).unwrap();
    assert!(out.duplicate, "fragment root was already materialised");
    let mut resumed = out.resumed.clone();
    resumed.sort_by_key(|&(_, w)| w);
    assert_eq!(
        resumed,
        vec![(k2b, 40), (k3, 50)],
        "deep fill must drain pending for every key it materialises"
    );
    assert!(!away.find(k2b).unwrap().is_placeholder());
    assert!(!away.find(k3).unwrap().is_placeholder());

    // Nothing leaked: parked == resumed, and the structure is sound.
    let snap = away.stats.snapshot();
    assert_eq!(snap.waiters_parked, snap.waiters_resumed);
    away.audit().expect("audit after deep fill");
    home.audit().expect("home audit");
}

#[test]
fn duplicate_fills_are_idempotent() {
    let (home, away) = make_world(1500);
    let k1 = busiest_octant(&home);
    let fill = home.serialize_fragment(k1, 2).unwrap();

    let first = away.insert_fragment(&fill).unwrap();
    assert!(!first.duplicate);
    let canonical = first.root as *const _;
    let allocated = away.n_allocated();

    let second = away.insert_fragment(&fill).unwrap();
    assert!(second.duplicate, "same fill delivered twice must be flagged");
    assert!(
        std::ptr::eq(second.root as *const _, canonical),
        "the pre-existing node stays canonical"
    );
    assert!(second.resumed.is_empty(), "no waiters were parked");
    assert_eq!(away.stats.snapshot().fills_duplicate, 1);
    // No-delete cache: the duplicate's nodes are allocated but the
    // reachable structure is unchanged and still consistent.
    assert!(away.n_allocated() > allocated);
    away.audit().expect("audit after duplicate fill");
}

#[test]
fn orphan_fill_is_rejected_without_mutating() {
    let (home, away) = make_world(1500);
    let k1 = busiest_octant(&home);
    // A fill for a *grandchild* key whose parent is still a placeholder
    // on the away rank (a reordered delivery) has nowhere to splice.
    let k2 = home
        .find(k1)
        .unwrap()
        .children_iter(8)
        .max_by_key(|c| c.n_particles)
        .expect("busiest octant has children")
        .key;
    let deep_fill = home.serialize_fragment(k2, 1).unwrap();

    let allocated = away.n_allocated();
    match away.insert_fragment(&deep_fill) {
        Err(CacheError::OrphanFill { key }) => assert_eq!(key, k2),
        other => panic!("expected OrphanFill, got {other:?}"),
    }
    assert_eq!(away.n_allocated(), allocated, "rejected fills must not mutate");
    assert_eq!(away.stats.snapshot().fills_inserted, 0);
    away.audit().expect("audit after rejected fill");

    // Once the parent arrives, the same bytes splice fine.
    away.insert_fragment(&home.serialize_fragment(k1, 1).unwrap()).unwrap();
    away.insert_fragment(&deep_fill).expect("parent now materialised");
    away.audit().expect("audit after recovery");
}

#[test]
fn placeholder_root_fill_rearms_the_request_flag() {
    let (home, away) = make_world(1000);
    // A second away rank serialises a key it only holds as a
    // placeholder — the fill carries a summary but no data.
    let away2: CacheTree<CountData> = {
        let (_, a2) = make_world(1000);
        a2
    };
    let k1 = busiest_octant(&home);
    let ph = away.lookup(k1).unwrap();
    assert!(matches!(away.request(ph, 9), RequestOutcome::SendFetch { .. }));

    let empty_fill = away2.serialize_fragment(k1, 5).unwrap();
    let out = away.insert_fragment(&empty_fill).unwrap();
    assert!(out.root.is_placeholder(), "no data arrived");
    assert_eq!(out.resumed, vec![(k1, 9)], "waiters come back for a re-request");

    // The flag was re-armed: the re-request sends a fetch instead of
    // deduping into a wait that nothing will ever end.
    match away.request(away.lookup(k1).unwrap(), 9) {
        RequestOutcome::SendFetch { home_rank } => assert_eq!(home_rank, 1),
        other => panic!("expected a fresh SendFetch, got {other:?}"),
    }
    // And the real fill then finishes the cycle.
    let out = away.insert_fragment(&home.serialize_fragment(k1, 2).unwrap()).unwrap();
    assert_eq!(out.resumed, vec![(k1, 9)]);
    assert!(!out.root.is_placeholder());
    away.audit().expect("audit after recovery");
}

#[test]
fn garbage_and_empty_payloads_are_structured_errors() {
    let (_, away) = make_world(500);
    match away.insert_fragment(&[0xde, 0xad, 0xbe, 0xef]) {
        Err(CacheError::MalformedFragment { len }) => assert_eq!(len, 4),
        other => panic!("expected MalformedFragment, got {other:?}"),
    }
    match away.insert_fragment(&[]) {
        Err(CacheError::MalformedFragment { len }) => assert_eq!(len, 0),
        other => panic!("expected MalformedFragment, got {other:?}"),
    }
    let uninit: CacheTree<CountData> = CacheTree::new(0, 3);
    match uninit.serialize_fragment(NodeKey::root(), 1) {
        Err(CacheError::NotInitialized) => {}
        other => panic!("expected NotInitialized, got {other:?}"),
    }
    uninit.audit().expect("empty cache audits clean");
    away.audit().expect("audit unaffected by rejected payloads");
}
