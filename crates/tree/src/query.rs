//! Traversal-agnostic point-query kernels over built tree arenas.
//!
//! These are the query kernels the serving layer (`paratreet-serve`)
//! answers external requests with, extracted from the kNN application
//! so every consumer — the apps crate, the query service, the
//! benchmarks — shares one implementation. They operate directly on a
//! *forest* of [`BuiltTree`] arenas (the per-Subtree pieces a build or
//! an incremental advance produces) with no cache, visitor, or engine
//! machinery: a query descends the entry subtree first so its pruning
//! bound tightens before the remaining subtrees are considered.
//!
//! Determinism: every kernel breaks distance ties by particle id and
//! sorts its output canonically, so the same forest and query always
//! produce bit-identical results — the property the serving layer's
//! pinned-snapshot replay tests assert.

use crate::node::{BuiltTree, NodeIdx};
use crate::Data;
use paratreet_geometry::{BoundingBox, Vec3};
use std::collections::BinaryHeap;

/// One neighbour candidate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Squared distance to the query point.
    pub dist_sq: f64,
    /// Neighbour's particle id.
    pub id: u64,
    /// Neighbour's position.
    pub pos: Vec3,
    /// Neighbour's mass.
    pub mass: f64,
    /// Neighbour's velocity (used by SPH pressure forces).
    pub vel: Vec3,
}

/// Max-heap entry ordered by distance.
#[derive(Clone, Copy, Debug)]
struct HeapEntry(Neighbor);

impl PartialEq for HeapEntry {
    fn eq(&self, o: &Self) -> bool {
        self.0.dist_sq == o.0.dist_sq && self.0.id == o.0.id
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        self.0.dist_sq.total_cmp(&o.0.dist_sq).then(self.0.id.cmp(&o.0.id))
    }
}

/// A bounded max-heap holding the k best candidates seen so far.
#[derive(Clone, Debug, Default)]
pub struct KnnHeap {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl KnnHeap {
    /// An empty heap with capacity `k`.
    pub fn new(k: usize) -> KnnHeap {
        KnnHeap { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offers a candidate; keeps only the k nearest.
    #[inline]
    pub fn offer(&mut self, n: Neighbor) {
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry(n));
        } else if let Some(top) = self.heap.peek() {
            if n.dist_sq < top.0.dist_sq {
                self.heap.pop();
                self.heap.push(HeapEntry(n));
            }
        }
    }

    /// The current pruning bound: the k-th best squared distance, or
    /// infinity while fewer than k candidates are known.
    #[inline]
    pub fn bound(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |e| e.0.dist_sq)
        }
    }

    /// Number of candidates held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no candidates are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains into ascending-distance order (ties broken by id).
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq).then(a.id.cmp(&b.id)));
        v
    }
}

/// The first particle a ray meets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RayHit {
    /// Distance along the (normalized) ray direction.
    pub t: f64,
    /// Squared perpendicular distance from the ray to the particle.
    pub dist_sq: f64,
    /// Particle id.
    pub id: u64,
    /// Particle position.
    pub pos: Vec3,
}

/// Reusable traversal scratch: workers answering query streams keep one
/// per thread so batched queries share the descent stack allocation.
#[derive(Debug, Default)]
pub struct QueryScratch {
    stack: Vec<NodeIdx>,
}

/// The subtree whose root region a point falls in (nearest root region
/// when no region covers it — possible after incremental drift). This
/// is the batching key the serving layer groups requests by: queries
/// entering the same subtree share their first descent's cache
/// footprint. Returns 0 for an empty forest.
pub fn entry_subtree<D: Data>(trees: &[BuiltTree<D>], pos: Vec3) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, t) in trees.iter().enumerate() {
        if t.nodes.is_empty() || t.root().n_particles == 0 {
            continue;
        }
        let d = t.root().bbox.dist_sq_to(pos);
        if d == 0.0 {
            return i;
        }
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Subtree visit order for a point query: the entry subtree first, then
/// the rest by ascending root-region distance (ties by index).
fn subtree_order<D: Data>(trees: &[BuiltTree<D>], pos: Vec3) -> Vec<usize> {
    let mut order: Vec<(f64, usize)> = trees
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.nodes.is_empty() && t.root().n_particles > 0)
        .map(|(i, t)| (t.root().bbox.dist_sq_to(pos), i))
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    order.into_iter().map(|(_, i)| i).collect()
}

/// The k nearest particles to `pos` across the forest, ascending by
/// distance (ties by id). Unlike the simulation-internal kNN visitor,
/// the query point is external: no particle is excluded.
pub fn knn_query<D: Data>(trees: &[BuiltTree<D>], pos: Vec3, k: usize) -> Vec<Neighbor> {
    knn_query_with(trees, pos, k, &mut QueryScratch::default())
}

/// [`knn_query`] with caller-owned scratch (batch amortization).
pub fn knn_query_with<D: Data>(
    trees: &[BuiltTree<D>],
    pos: Vec3,
    k: usize,
    scratch: &mut QueryScratch,
) -> Vec<Neighbor> {
    let mut heap = KnnHeap::new(k);
    if k == 0 {
        return Vec::new();
    }
    for ti in subtree_order(trees, pos) {
        let tree = &trees[ti];
        if tree.root().bbox.dist_sq_to(pos) >= heap.bound() {
            continue;
        }
        let stack = &mut scratch.stack;
        stack.clear();
        stack.push(0);
        while let Some(i) = stack.pop() {
            let node = tree.node(i);
            if node.n_particles == 0 || node.bbox.dist_sq_to(pos) >= heap.bound() {
                continue;
            }
            if node.is_leaf() {
                for p in tree.bucket(i) {
                    let d2 = p.pos.dist_sq(pos);
                    if d2 < heap.bound() {
                        heap.offer(Neighbor {
                            dist_sq: d2,
                            id: p.id,
                            pos: p.pos,
                            mass: p.mass,
                            vel: p.vel,
                        });
                    }
                }
                continue;
            }
            // Descend nearest child first: push in descending-distance
            // order so the closest pops first and tightens the bound.
            let mut kids: [(f64, NodeIdx); 8] = [(0.0, 0); 8];
            let mut n_kids = 0;
            for c in node.child_indices() {
                let child = tree.node(c);
                if child.n_particles > 0 {
                    kids[n_kids] = (child.bbox.dist_sq_to(pos), c);
                    n_kids += 1;
                }
            }
            kids[..n_kids].sort_by(|a, b| b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)));
            for (_, c) in &kids[..n_kids] {
                stack.push(*c);
            }
        }
    }
    heap.into_sorted()
}

/// Every particle within `radius` of `center`, ascending by distance
/// (ties by id).
pub fn ball_query<D: Data>(trees: &[BuiltTree<D>], center: Vec3, radius: f64) -> Vec<Neighbor> {
    ball_query_with(trees, center, radius, &mut QueryScratch::default())
}

/// [`ball_query`] with caller-owned scratch (batch amortization).
pub fn ball_query_with<D: Data>(
    trees: &[BuiltTree<D>],
    center: Vec3,
    radius: f64,
    scratch: &mut QueryScratch,
) -> Vec<Neighbor> {
    let r2 = radius * radius;
    let mut out = Vec::new();
    for tree in trees {
        if tree.nodes.is_empty() || tree.root().n_particles == 0 {
            continue;
        }
        let stack = &mut scratch.stack;
        stack.clear();
        stack.push(0);
        while let Some(i) = stack.pop() {
            let node = tree.node(i);
            if node.n_particles == 0 || node.bbox.dist_sq_to(center) > r2 {
                continue;
            }
            if node.is_leaf() {
                for p in tree.bucket(i) {
                    let d2 = p.pos.dist_sq(center);
                    if d2 <= r2 {
                        out.push(Neighbor {
                            dist_sq: d2,
                            id: p.id,
                            pos: p.pos,
                            mass: p.mass,
                            vel: p.vel,
                        });
                    }
                }
            } else {
                for c in node.child_indices() {
                    stack.push(c);
                }
            }
        }
    }
    out.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq).then(a.id.cmp(&b.id)));
    out
}

/// Ids of every particle inside `query` (closed-interval containment),
/// ascending by id.
pub fn range_query<D: Data>(trees: &[BuiltTree<D>], query: &BoundingBox) -> Vec<u64> {
    range_query_with(trees, query, &mut QueryScratch::default())
}

/// [`range_query`] with caller-owned scratch (batch amortization).
pub fn range_query_with<D: Data>(
    trees: &[BuiltTree<D>],
    query: &BoundingBox,
    scratch: &mut QueryScratch,
) -> Vec<u64> {
    let mut out = Vec::new();
    for tree in trees {
        if tree.nodes.is_empty() || tree.root().n_particles == 0 {
            continue;
        }
        let stack = &mut scratch.stack;
        stack.clear();
        stack.push(0);
        while let Some(i) = stack.pop() {
            let node = tree.node(i);
            if node.n_particles == 0 || !query.intersects(&node.bbox) {
                continue;
            }
            if node.is_leaf() {
                for p in tree.bucket(i) {
                    if query.contains(p.pos) {
                        out.push(p.id);
                    }
                }
            } else {
                for c in node.child_indices() {
                    stack.push(c);
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Entry distance of a ray into `bbox` inflated by `radius`, or `None`
/// when the ray misses it within `[0, t_max]`. `dir` must be normalized.
fn ray_box_entry(
    bbox: &BoundingBox,
    origin: Vec3,
    dir: Vec3,
    radius: f64,
    t_max: f64,
) -> Option<f64> {
    let mut t0 = 0.0f64;
    let mut t1 = t_max;
    for i in 0..3 {
        let o = origin.component(i);
        let d = dir.component(i);
        let lo = bbox.lo.component(i) - radius;
        let hi = bbox.hi.component(i) + radius;
        if d == 0.0 {
            if o < lo || o > hi {
                return None;
            }
            continue;
        }
        let inv = 1.0 / d;
        let (near, far) = if inv >= 0.0 {
            ((lo - o) * inv, (hi - o) * inv)
        } else {
            ((hi - o) * inv, (lo - o) * inv)
        };
        t0 = t0.max(near);
        t1 = t1.min(far);
        if t0 > t1 {
            return None;
        }
    }
    Some(t0)
}

/// The first particle within perpendicular distance `radius` of the ray
/// `origin + t * dir` for `t` in `[0, t_max]` — smallest `t`, ties by
/// id. `dir` is normalized internally; a zero direction finds nothing.
pub fn raycast<D: Data>(
    trees: &[BuiltTree<D>],
    origin: Vec3,
    dir: Vec3,
    radius: f64,
    t_max: f64,
) -> Option<RayHit> {
    raycast_with(trees, origin, dir, radius, t_max, &mut QueryScratch::default())
}

/// [`raycast`] with caller-owned scratch (batch amortization).
pub fn raycast_with<D: Data>(
    trees: &[BuiltTree<D>],
    origin: Vec3,
    dir: Vec3,
    radius: f64,
    t_max: f64,
    scratch: &mut QueryScratch,
) -> Option<RayHit> {
    if dir.norm_sq() == 0.0 {
        return None;
    }
    let dir = dir.normalized();
    let r2 = radius * radius;
    let mut best: Option<RayHit> = None;
    for tree in trees {
        if tree.nodes.is_empty() || tree.root().n_particles == 0 {
            continue;
        }
        let stack = &mut scratch.stack;
        stack.clear();
        stack.push(0);
        while let Some(i) = stack.pop() {
            let node = tree.node(i);
            if node.n_particles == 0 {
                continue;
            }
            let cutoff = best.map_or(t_max, |h| h.t);
            match ray_box_entry(&node.bbox, origin, dir, radius, t_max) {
                Some(entry) if entry <= cutoff => {}
                _ => continue,
            }
            if node.is_leaf() {
                for p in tree.bucket(i) {
                    let t = (p.pos - origin).dot(dir).clamp(0.0, t_max);
                    let d2 = (origin + dir * t).dist_sq(p.pos);
                    if d2 <= r2 {
                        let hit = RayHit { t, dist_sq: d2, id: p.id, pos: p.pos };
                        let better = match &best {
                            None => true,
                            Some(b) => t < b.t || (t == b.t && p.id < b.id),
                        };
                        if better {
                            best = Some(hit);
                        }
                    }
                }
            } else {
                for c in node.child_indices() {
                    stack.push(c);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountData, TreeBuilder, TreeType};
    use paratreet_particles::{gen, Particle};

    fn forest(n: usize, seed: u64) -> (Vec<BuiltTree<CountData>>, Vec<Particle>) {
        let ps = gen::clustered(n, 3, seed, 1.0, 1.0);
        // Split into two builds to exercise the forest paths.
        let mid = ps.len() / 2;
        let builder = TreeBuilder::new(TreeType::Octree).bucket_size(8);
        let a = builder.build::<CountData>(
            ps[..mid].to_vec(),
            BoundingBox::around(ps[..mid].iter().map(|p| p.pos)),
        );
        let builder = TreeBuilder::new(TreeType::Octree).bucket_size(8);
        let b = builder.build::<CountData>(
            ps[mid..].to_vec(),
            BoundingBox::around(ps[mid..].iter().map(|p| p.pos)),
        );
        (vec![a, b], ps)
    }

    #[test]
    fn knn_matches_brute_force() {
        let (trees, ps) = forest(400, 11);
        for (qi, q) in ps.iter().step_by(37).enumerate() {
            let pos = q.pos + Vec3::splat(1e-3 * (qi as f64 + 1.0));
            let got = knn_query(&trees, pos, 6);
            let mut brute: Vec<(f64, u64)> =
                ps.iter().map(|p| (p.pos.dist_sq(pos), p.id)).collect();
            brute.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let want: Vec<u64> = brute.iter().take(6).map(|(_, id)| *id).collect();
            let got_ids: Vec<u64> = got.iter().map(|n| n.id).collect();
            assert_eq!(got_ids, want, "query {qi}");
            assert!(got.windows(2).all(|w| w[0].dist_sq <= w[1].dist_sq));
        }
    }

    #[test]
    fn ball_matches_brute_force() {
        let (trees, ps) = forest(300, 5);
        let center = ps[17].pos;
        for radius in [0.05, 0.2, 0.7] {
            let got = ball_query(&trees, center, radius);
            let mut want: Vec<u64> = ps
                .iter()
                .filter(|p| p.pos.dist_sq(center) <= radius * radius)
                .map(|p| p.id)
                .collect();
            want.sort_unstable();
            let mut got_ids: Vec<u64> = got.iter().map(|n| n.id).collect();
            got_ids.sort_unstable();
            assert_eq!(got_ids, want, "radius {radius}");
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let (trees, ps) = forest(300, 7);
        let query = BoundingBox::cube(ps[3].pos, 0.3);
        let got = range_query(&trees, &query);
        let mut want: Vec<u64> =
            ps.iter().filter(|p| query.contains(p.pos)).map(|p| p.id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty(), "query box around a particle finds at least it");
    }

    #[test]
    fn raycast_matches_brute_force() {
        let (trees, ps) = forest(300, 13);
        let origin = Vec3::splat(-2.0);
        for (i, aim) in ps.iter().step_by(41).enumerate() {
            // The kernel normalizes internally; hand the brute force the
            // identical normalized vector so results match bit-for-bit.
            let dir = (aim.pos - origin).normalized();
            let radius = 0.05;
            let got = raycast(&trees, origin, aim.pos - origin, radius, 10.0);
            let mut want: Option<RayHit> = None;
            for p in &ps {
                let t = (p.pos - origin).dot(dir).clamp(0.0, 10.0);
                let d2 = (origin + dir * t).dist_sq(p.pos);
                if d2 <= radius * radius {
                    let better = match &want {
                        None => true,
                        Some(b) => t < b.t || (t == b.t && p.id < b.id),
                    };
                    if better {
                        want = Some(RayHit { t, dist_sq: d2, id: p.id, pos: p.pos });
                    }
                }
            }
            assert_eq!(got, want, "ray {i}");
        }
    }

    #[test]
    fn queries_on_empty_forest_are_empty() {
        let trees: Vec<BuiltTree<CountData>> = Vec::new();
        assert!(knn_query(&trees, Vec3::ZERO, 4).is_empty());
        assert!(ball_query(&trees, Vec3::ZERO, 1.0).is_empty());
        assert!(range_query(&trees, &BoundingBox::cube(Vec3::ZERO, 1.0)).is_empty());
        assert!(raycast(&trees, Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 0.1, 5.0).is_none());
        assert_eq!(entry_subtree(&trees, Vec3::ZERO), 0);
    }

    #[test]
    fn entry_subtree_picks_containing_root() {
        let (trees, ps) = forest(200, 19);
        for p in ps.iter().step_by(29) {
            let e = entry_subtree(&trees, p.pos);
            // The chosen root region must be at least as close as any other.
            let d = trees[e].root().bbox.dist_sq_to(p.pos);
            for t in &trees {
                assert!(d <= t.root().bbox.dist_sq_to(p.pos) + 1e-12);
            }
        }
    }
}
