//! Gravity-traversal access-trace replay (the Table II experiment).
//!
//! Replays the memory-access stream of a Barnes-Hut traversal over the
//! *real* tree with the *real* opening decisions, in either the
//! transposed (ParaTreeT) or per-bucket (ChaNGa) order, against the
//! simulated hierarchy. CPU streams are interleaved round-robin, one
//! work item per turn, so the shared L3 sees concurrent footprints.
//!
//! Address layout (synthetic but shape-faithful):
//!
//! * tree nodes — an array of `node_bytes` records (ParaTreeT's compact
//!   `Data` vs ChaNGa's larger per-node state is exactly this knob),
//! * source particles — the bucket-ordered particle array,
//! * target copies — the partition-owned writable copies,
//! * bucket metadata — per-bucket bounding boxes read by `open()`.

use crate::hierarchy::{CacheHierarchy, HierarchyConfig, LevelStats};
use paratreet_apps::gravity::CentroidData;
use paratreet_geometry::Sphere;
use paratreet_particles::{Particle, ParticleVec};
use paratreet_tree::{BuiltTree, NodeIdx, TreeBuilder, TreeType};

/// Which traversal order to replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceStyle {
    /// ParaTreeT: bucket-per-node (loop transposition).
    Transposed,
    /// ChaNGa: tree walk per bucket.
    PerBucket,
}

/// Replay parameters.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Traversal order.
    pub style: TraceStyle,
    /// Bytes of per-node state streamed on every node visit.
    pub node_bytes: u64,
    /// Opening angle.
    pub theta: f64,
    /// Leaf bucket size.
    pub bucket_size: usize,
    /// Particles per Partition. The paper's overdecomposition sizes
    /// partitions so "the set of buckets in a Partition fits in the L2
    /// cache"; the transposed traversal processes one partition at a
    /// time, sweeping only that partition's targets per node.
    pub partition_particles: usize,
    /// CPUs sharing the L3.
    pub cpus: usize,
    /// Hierarchy geometry/timing.
    pub hierarchy: HierarchyConfig,
    /// Arithmetic cycles per particle–particle interaction (sqrt + MADs;
    /// memory stalls are modelled separately by the hierarchy).
    pub compute_pp: f64,
    /// Arithmetic cycles per particle–node (multipole) interaction.
    pub compute_pn: f64,
    /// Arithmetic cycles per `open()` test.
    pub compute_open: f64,
    /// Arithmetic cycles of per-node-visit overhead (dispatch, stack).
    pub compute_visit: f64,
    /// Model interaction-list traffic: ChaNGa-style walks append every
    /// accepted node / source particle to a per-bucket check list and
    /// the kernel re-reads it (extra stores + loads per interaction).
    pub list_traffic: bool,
}

impl TraceConfig {
    /// ParaTreeT's configuration: transposed order, compact `Data`
    /// (CentroidData ≈ 128 B + node header).
    pub fn paratreet(cpus: usize) -> TraceConfig {
        TraceConfig {
            style: TraceStyle::Transposed,
            node_bytes: 160,
            theta: 0.7,
            bucket_size: 16,
            partition_particles: 4096,
            cpus,
            hierarchy: HierarchyConfig::default(),
            compute_pp: 28.0,
            compute_pn: 40.0,
            compute_open: 12.0,
            compute_visit: 20.0,
            list_traffic: false,
        }
    }

    /// ChaNGa's configuration: per-bucket walks and the larger per-node
    /// working set the paper credits for most of the difference.
    pub fn changa(cpus: usize) -> TraceConfig {
        TraceConfig {
            style: TraceStyle::PerBucket,
            node_bytes: 320,
            compute_visit: 45.0, // virtual-dispatch walk, check-list upkeep
            list_traffic: true,
            ..TraceConfig::paratreet(cpus)
        }
    }
}

/// One Table II-style row.
#[derive(Clone, Copy, Debug)]
pub struct TraceResult {
    /// Estimated data-access runtime in seconds.
    pub runtime: f64,
    /// Aggregated L1D counters.
    pub l1: LevelStats,
    /// Aggregated L2 counters.
    pub l2: LevelStats,
    /// Shared L3 counters.
    pub l3: LevelStats,
    /// Exact particle–particle interactions replayed (identical across
    /// styles — the work is the same, only the order differs).
    pub pp_interactions: u64,
    /// Exact particle–node interactions replayed.
    pub pn_interactions: u64,
    /// Tree-node visits (work items processed) — the quantity the loop
    /// transposition amortises.
    pub node_visits: u64,
}

/// Synthetic address regions, far enough apart never to alias.
const NODE_BASE: u64 = 0x1_0000_0000;
const SRC_BASE: u64 = 0x2_0000_0000;
const TGT_BASE: u64 = 0x3_0000_0000;
const META_BASE: u64 = 0x4_0000_0000;
/// Bytes per particle record in the arrays.
const PARTICLE_BYTES: u64 = 152;
/// Bytes the gravity kernel reads per source particle (position + mass).
const SRC_READ: u64 = 32;
/// Bytes read from a target per interaction (position).
const TGT_READ: u64 = 24;
/// Bytes written to a target per node/leaf evaluation (acceleration).
const TGT_WRITE: u64 = 24;
/// Bytes of bucket metadata read per `open()` test.
const META_READ: u64 = 48;
/// Per-CPU stack/scratch region (traversal bookkeeping).
const STACK_BASE: u64 = 0x5_0000_0000;
/// Per-CPU interaction-list region (ChaNGa-style check lists).
const LIST_BASE: u64 = 0x6_0000_0000;
/// Bytes per interaction-list entry (pointer + flags).
const LIST_BYTES: u64 = 16;
/// Bytes of stack traffic per work-item push/pop.
const STACK_BYTES: u64 = 16;

struct Bucket {
    start: u64,
    len: u64,
}

/// Per-CPU traversal state: the current partition's work stack plus the
/// queue of partitions (transposed) or buckets (per-bucket) remaining.
struct CpuState {
    stack: Vec<(NodeIdx, Vec<u32>)>,
    /// Work units not yet started: partitions (bucket-id groups) for the
    /// transposed style, single buckets for the per-bucket style.
    queue: Vec<Vec<u32>>,
}

fn opens(
    tree: &BuiltTree<CentroidData>,
    node: NodeIdx,
    bucket_box: &paratreet_geometry::BoundingBox,
    theta: f64,
) -> bool {
    let d = &tree.node(node).data;
    if d.sum_mass == 0.0 {
        return false;
    }
    let sphere = Sphere::new(d.centroid(), d.opening_radius(theta));
    bucket_box.intersects_sphere(&sphere)
}

/// Replays the traversal and returns the Table II row.
pub fn simulate_gravity(particles: Vec<Particle>, cfg: TraceConfig) -> TraceResult {
    let bbox = particles.bounding_box().padded(1e-9).bounding_cube();
    let tree: BuiltTree<CentroidData> =
        TreeBuilder::new(TreeType::Octree).bucket_size(cfg.bucket_size).build(particles, bbox);

    // Buckets = leaves, with their particle ranges.
    let buckets: Vec<Bucket> = tree
        .leaf_indices()
        .into_iter()
        .map(|li| {
            let r = tree.node(li).bucket_range().expect("leaf");
            Bucket { start: r.start as u64, len: (r.end - r.start) as u64 }
        })
        .collect();
    let bucket_boxes: Vec<paratreet_geometry::BoundingBox> = buckets
        .iter()
        .map(|b| {
            paratreet_geometry::BoundingBox::around(
                tree.particles[b.start as usize..(b.start + b.len) as usize].iter().map(|p| p.pos),
            )
        })
        .collect();

    // Contiguous blocks of buckets per CPU, cut into partitions of
    // ~partition_particles each (the overdecomposition granularity).
    let cpus = cfg.cpus.max(1);
    let mut states: Vec<CpuState> = Vec::with_capacity(cpus);
    for c in 0..cpus {
        let lo = c * buckets.len() / cpus;
        let hi = (c + 1) * buckets.len() / cpus;
        let mut queue: Vec<Vec<u32>> = Vec::new();
        match cfg.style {
            TraceStyle::Transposed => {
                let mut current: Vec<u32> = Vec::new();
                let mut current_particles = 0u64;
                for b in lo as u32..hi as u32 {
                    current_particles += buckets[b as usize].len;
                    current.push(b);
                    if current_particles >= cfg.partition_particles as u64 {
                        queue.push(std::mem::take(&mut current));
                        current_particles = 0;
                    }
                }
                if !current.is_empty() {
                    queue.push(current);
                }
            }
            TraceStyle::PerBucket => {
                queue.extend((lo as u32..hi as u32).map(|b| vec![b]));
            }
        }
        queue.reverse(); // pop from the front in original order
        states.push(CpuState { stack: vec![], queue });
    }

    let mut hier = CacheHierarchy::new(cpus, cfg.hierarchy);
    let mut pp = 0u64;
    let mut pn = 0u64;
    let mut visits = 0u64;
    let mut list_pos: Vec<u64> = vec![0; cpus];
    // Appends one check-list entry and charges the kernel's later read.
    let list_touch = |hier: &mut CacheHierarchy, list_pos: &mut Vec<u64>, cpu: usize| {
        let addr = LIST_BASE + cpu as u64 * 0x100_0000 + (list_pos[cpu] % 0x80_0000);
        list_pos[cpu] += LIST_BYTES;
        hier.access(cpu, addr, LIST_BYTES, true);
        hier.access(cpu, addr, LIST_BYTES, false);
    };

    // Round-robin: each live CPU processes one work item per turn.
    let mut live = cpus;
    while live > 0 {
        live = 0;
        for (cpu, st) in states.iter_mut().enumerate() {
            if st.stack.is_empty() {
                if let Some(unit) = st.queue.pop() {
                    st.stack.push((0, unit));
                }
            }
            let (node_idx, interested) = match st.stack.pop() {
                Some(x) => x,
                None => continue,
            };
            live += 1;

            // Visit: stream the node's state.
            hier.access(cpu, NODE_BASE + node_idx as u64 * cfg.node_bytes, cfg.node_bytes, false);
            hier.cycles[cpu] += cfg.compute_visit;
            visits += 1;
            let node = tree.node(node_idx);
            let mut opened: Vec<u32> = Vec::new();
            for &b in &interested {
                // open(): read the bucket metadata.
                hier.access(cpu, META_BASE + b as u64 * 64, META_READ, false);
                let o = opens(&tree, node_idx, &bucket_boxes[b as usize], cfg.theta);
                hier.cycles[cpu] += cfg.compute_open;
                let bucket = &buckets[b as usize];
                if node.is_leaf() {
                    if o {
                        // leaf(): exact pairwise kernel. Each pair
                        // re-reads source components (position, then
                        // mass) and the target position — hot accesses
                        // that real counters see and mostly hit.
                        let leaf_range = node.bucket_range().expect("leaf");
                        for t in 0..bucket.len {
                            let taddr = TGT_BASE + (bucket.start + t) * PARTICLE_BYTES;
                            for s in leaf_range.clone() {
                                let saddr = SRC_BASE + s as u64 * PARTICLE_BYTES;
                                if cfg.list_traffic && t == 0 {
                                    // One check-list entry per source
                                    // particle per bucket.
                                    list_touch(&mut hier, &mut list_pos, cpu);
                                }
                                hier.access(cpu, saddr, SRC_READ, false);
                                hier.access(cpu, saddr + 8, 8, false); // mass reload
                                hier.access(cpu, taddr, TGT_READ, false);
                                hier.cycles[cpu] += cfg.compute_pp;
                                pp += 1;
                            }
                            hier.access(cpu, taddr + TGT_READ, TGT_WRITE, true);
                        }
                    } else {
                        // node() on a leaf summary.
                        if cfg.list_traffic {
                            list_touch(&mut hier, &mut list_pos, cpu);
                        }
                        for t in 0..bucket.len {
                            let taddr = TGT_BASE + (bucket.start + t) * PARTICLE_BYTES;
                            hier.access(cpu, taddr, TGT_READ, false);
                            hier.access(
                                cpu,
                                NODE_BASE + node_idx as u64 * cfg.node_bytes,
                                64,
                                false,
                            );
                            hier.access(cpu, taddr + TGT_READ, TGT_WRITE, true);
                            hier.cycles[cpu] += cfg.compute_pn;
                            pn += 1;
                        }
                    }
                } else if o {
                    opened.push(b);
                } else {
                    // node(): multipole approximation per target — the
                    // kernel re-reads the node's moments per target (hot)
                    // plus the target position, then writes acceleration.
                    if cfg.list_traffic {
                        list_touch(&mut hier, &mut list_pos, cpu);
                    }
                    for t in 0..bucket.len {
                        let taddr = TGT_BASE + (bucket.start + t) * PARTICLE_BYTES;
                        hier.access(cpu, taddr, TGT_READ, false);
                        hier.access(cpu, NODE_BASE + node_idx as u64 * cfg.node_bytes, 64, false);
                        hier.access(cpu, taddr + TGT_READ, TGT_WRITE, true);
                        hier.cycles[cpu] += cfg.compute_pn;
                        pn += 1;
                    }
                }
            }
            if !opened.is_empty() {
                for c in node.children.iter().rev() {
                    if *c != paratreet_tree::node::NO_NODE {
                        // Stack push: bookkeeping traffic per work item.
                        let depth = st.stack.len() as u64;
                        hier.access(
                            cpu,
                            STACK_BASE + cpu as u64 * 0x10000 + depth * STACK_BYTES,
                            STACK_BYTES,
                            true,
                        );
                        st.stack.push((*c, opened.clone()));
                    }
                }
            }
        }
    }

    TraceResult {
        runtime: hier.runtime_seconds(),
        l1: hier.l1_total(),
        l2: hier.l2_total(),
        l3: hier.l3_stats,
        pp_interactions: pp,
        pn_interactions: pn,
        node_visits: visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_particles::gen;

    fn particles(n: usize) -> Vec<Particle> {
        gen::uniform_cube(n, 5, 1.0, 1.0)
    }

    #[test]
    fn styles_do_identical_physical_work() {
        let a = simulate_gravity(particles(2000), TraceConfig::paratreet(1));
        let b = simulate_gravity(particles(2000), TraceConfig::changa(1));
        assert_eq!(a.pp_interactions, b.pp_interactions);
        assert_eq!(a.pn_interactions, b.pn_interactions);
    }

    #[test]
    fn transposed_makes_fewer_accesses() {
        // Table II: ParaTreeT has fewer L1D loads and stores, fewer node
        // visits by orders of magnitude, and lower estimated runtime.
        let a = simulate_gravity(particles(10_000), TraceConfig::paratreet(1));
        let b = simulate_gravity(particles(10_000), TraceConfig::changa(1));
        assert!(
            a.l1.load_accesses < b.l1.load_accesses,
            "ParaTreeT {} vs ChaNGa {}",
            a.l1.load_accesses,
            b.l1.load_accesses
        );
        assert!(a.l1.store_accesses < b.l1.store_accesses);
        assert!(a.node_visits * 10 < b.node_visits);
        assert!(a.runtime < b.runtime, "{} vs {}", a.runtime, b.runtime);
    }

    #[test]
    fn more_cpus_shorten_runtime() {
        let one = simulate_gravity(particles(4000), TraceConfig::paratreet(1));
        let four = simulate_gravity(particles(4000), TraceConfig::paratreet(4));
        assert!(four.runtime < one.runtime * 0.5, "{} vs {}", four.runtime, one.runtime);
        // Same work regardless of CPU count.
        assert_eq!(one.pp_interactions, four.pp_interactions);
    }

    #[test]
    fn deterministic() {
        let a = simulate_gravity(particles(1000), TraceConfig::paratreet(2));
        let b = simulate_gravity(particles(1000), TraceConfig::paratreet(2));
        assert_eq!(a.l1.load_accesses, b.l1.load_accesses);
        assert_eq!(a.runtime, b.runtime);
    }
}
