//! Comparator implementations for the paper's evaluation.
//!
//! * [`direct`] — O(N²) pairwise gravity: the accuracy ground truth every
//!   tree code is validated against.
//! * [`changa`] — the ChaNGa-like gravity baseline of Fig. 10/13: same
//!   physics, per-bucket DFS walks (no loop transposition), per-thread
//!   software caches (duplicate remote fetches), larger per-node state,
//!   and tree-build merging of non-local ancestors (no
//!   Partitions–Subtrees separation).
//! * [`gadget`] — the Gadget-2-like SPH baseline of Fig. 11: smoothing
//!   lengths converged by repeated fixed-ball searches instead of a
//!   single kNN pass, and a pure-MPI execution model (one rank per core,
//!   no shared-memory cache).

pub mod changa;
pub mod direct;
pub mod gadget;
