//! Criterion microbenchmarks: software-cache operations — fragment
//! serialisation, wait-free vs exclusive-write insertion (the Fig. 3
//! mechanism at micro scale), and concurrent insertion throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paratreet_apps::gravity::CentroidData;
use paratreet_cache::{CacheTree, SubtreeSummary, XWriteCache};
use paratreet_geometry::NodeKey;
use paratreet_particles::{gen, ParticleVec};
use paratreet_telemetry::Telemetry;
use paratreet_tree::{BuiltTree, TreeBuilder, TreeType};
use std::hint::black_box;

/// Builds the 8 octant subtrees of a clustered distribution with their
/// summaries (home rank 1).
fn make_octant_trees(
    n: usize,
) -> (Vec<SubtreeSummary<CentroidData>>, Vec<BuiltTree<CentroidData>>) {
    let mut ps = gen::clustered(n, 4, 3, 1.0, 1.0);
    let universe = ps.bounding_box().padded(1e-9).bounding_cube();
    ps.assign_keys(&universe);
    ps.sort_by_sfc_key();
    let mut summaries = Vec::new();
    let mut trees = Vec::new();
    for oct in 0..8 {
        let part: Vec<_> =
            ps.iter().copied().filter(|p| universe.octant_of(p.pos) == oct).collect();
        if part.is_empty() {
            continue;
        }
        let builder = TreeBuilder {
            root_key: NodeKey::root().child(oct, 3),
            root_depth: 1,
            parallel: false,
            ..TreeBuilder::new(TreeType::Octree)
        };
        let tree = builder.bucket_size(16).build::<CentroidData>(part, universe.octant(oct));
        summaries.push(SubtreeSummary {
            key: tree.root().key,
            bbox: tree.root().bbox,
            n_particles: tree.root().n_particles,
            data: tree.root().data.clone(),
            home_rank: 1,
        });
        trees.push(tree);
    }
    (summaries, trees)
}

/// Builds a home cache over 8 octant subtrees, returning the fills and
/// the summaries so fresh "away" caches can be constructed per
/// iteration.
fn make_world(n: usize) -> (Vec<SubtreeSummary<CentroidData>>, Vec<Vec<u8>>) {
    let (summaries, trees) = make_octant_trees(n);
    let home: CacheTree<CentroidData> = CacheTree::new(1, 3);
    home.init(&summaries, trees);
    let fills = summaries.iter().map(|s| home.serialize_fragment(s.key, 64).unwrap()).collect();
    (summaries, fills)
}

fn bench_serialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_wire");
    group.sample_size(20);
    let (summaries, fills) = make_world(20_000);
    let away: CacheTree<CentroidData> = CacheTree::new(0, 3);
    away.init(&summaries, vec![]);
    let total: usize = fills.iter().map(|f| f.len()).sum();
    group.throughput(criterion::Throughput::Bytes(total as u64));
    group.bench_function("decode_insert_20k", |b| {
        b.iter(|| {
            let fresh: CacheTree<CentroidData> = CacheTree::new(0, 3);
            fresh.init(&summaries, vec![]);
            for f in &fills {
                black_box(fresh.insert_fragment(f).unwrap().resumed.len());
            }
        })
    });
    group.finish();
}

fn bench_insert_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_cache");
    group.sample_size(10);
    let (summaries, fills) = make_world(20_000);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("waitfree", threads), &threads, |b, &threads| {
            b.iter(|| {
                let fresh: CacheTree<CentroidData> = CacheTree::new(0, 3);
                fresh.init(&summaries, vec![]);
                std::thread::scope(|s| {
                    for chunk in fills.chunks(fills.len().div_ceil(threads)) {
                        let fresh = &fresh;
                        s.spawn(move || {
                            for f in chunk {
                                black_box(fresh.insert_fragment(f).unwrap().resumed.len());
                            }
                        });
                    }
                });
            })
        });
        group.bench_with_input(BenchmarkId::new("xwrite", threads), &threads, |b, &threads| {
            b.iter(|| {
                let fresh: CacheTree<CentroidData> = CacheTree::new(0, 3);
                fresh.init(&summaries, vec![]);
                let locked = XWriteCache::new(fresh);
                std::thread::scope(|s| {
                    for chunk in fills.chunks(fills.len().div_ceil(threads)) {
                        let locked = &locked;
                        s.spawn(move || {
                            for f in chunk {
                                black_box(locked.insert_fragment(f).unwrap().resumed.len());
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

/// Recorder overhead on the hot cache-insertion path: the same fill
/// workload with a disabled handle (the `--no-default-features`
/// fast path compiles to the same no-op), with an enabled wall-clock
/// recorder, and the recorder's raw span cost in isolation.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(20);
    let (summaries, fills) = make_world(20_000);
    for (name, telemetry) in
        [("recorder_off", Telemetry::disabled()), ("recorder_on", Telemetry::wall(2))]
    {
        group.bench_with_input(
            BenchmarkId::new("insert_fills", name),
            &telemetry,
            |b, telemetry| {
                b.iter(|| {
                    let mut fresh: CacheTree<CentroidData> = CacheTree::new(0, 3);
                    fresh.telemetry = telemetry.clone();
                    fresh.init(&summaries, vec![]);
                    for f in &fills {
                        black_box(fresh.insert_fragment(f).unwrap().resumed.len());
                    }
                    // Keep the buffers from growing without bound
                    // across iterations.
                    black_box(telemetry.drain().spans.len());
                })
            },
        );
    }
    group.bench_function("raw_span", |b| {
        let telemetry = Telemetry::wall(2);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            black_box(telemetry.wall_span(0, "local traversal", Some(n), || black_box(n * 3)));
        });
        black_box(telemetry.drain().spans.len());
    });
    group.bench_function("raw_span_disabled", |b| {
        let telemetry = Telemetry::disabled();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            black_box(telemetry.wall_span(0, "local traversal", Some(n), || black_box(n * 3)));
        });
    });
    group.finish();
}

/// Fault-tolerance hot paths: stale-fill rejection after a cache-wide
/// epoch bump, whole-subtree grafts (re-shard recovery adopting a dead
/// rank's reconstructed subtree), and the full-depth serialisation that
/// both checkpointing and grafting replay. The epoch check itself rides
/// every `insert_fragment` — compare `stale_fill_reject` against
/// `cache_wire/decode_insert_20k` for its cost.
fn bench_recovery_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_overhead");
    group.sample_size(20);
    let (summaries, trees) = make_octant_trees(20_000);
    let home: CacheTree<CentroidData> = CacheTree::new(1, 3);
    home.init(&summaries, trees.clone());
    let fills: Vec<Vec<u8>> =
        summaries.iter().map(|s| home.serialize_fragment(s.key, 64).unwrap()).collect();

    // A crash bumped the receiving cache's epoch: every pre-crash fill
    // must bounce off the header check without touching the tree.
    group.bench_function("stale_fill_reject", |b| {
        b.iter(|| {
            let fresh: CacheTree<CentroidData> = CacheTree::new(0, 3);
            fresh.init(&summaries, vec![]);
            fresh.set_epoch(1);
            let mut rejected = 0usize;
            for f in &fills {
                rejected += usize::from(fresh.insert_fragment(f).is_err());
            }
            black_box(rejected)
        })
    });

    // Re-shard recovery: a survivor grafts the dead rank's rebuilt
    // subtrees wholesale (serialize + self-fill through the canonical
    // splice path).
    group.bench_function("graft_subtrees", |b| {
        b.iter(|| {
            let fresh: CacheTree<CentroidData> = CacheTree::new(0, 3);
            fresh.init(&summaries, vec![]);
            let mut resumed = 0usize;
            for t in &trees {
                resumed += fresh.insert_subtree(t.clone(), 0).unwrap().resumed.len();
            }
            black_box(resumed)
        })
    });

    // The checkpoint write path: full-depth fragments of every owned
    // subtree (what the engine charges to the network each iteration).
    let total: usize = fills.iter().map(|f| f.len()).sum();
    group.throughput(criterion::Throughput::Bytes(total as u64));
    group.bench_function("checkpoint_serialize", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for s in &summaries {
                bytes += home.serialize_fragment(s.key, 64).unwrap().len();
            }
            black_box(bytes)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_serialize,
    bench_insert_models,
    bench_telemetry_overhead,
    bench_recovery_overhead
);
criterion_main!(benches);
