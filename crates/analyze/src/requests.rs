//! Causal request chains and p999 exemplar resolution.
//!
//! The query service emits, per traced request, a root `request` span
//! (carrying its own causal `id` and the `request` id) plus one child
//! span per stage, each linked back via `parent`. This module inverts
//! those links: group children under roots, order stages, and — given
//! a metrics dump — resolve the `serve.latency.<class>.p999_exemplar`
//! back to the concrete request's complete span chain, which is how a
//! tail-latency number turns into a story about *where* the time went.

use crate::trace::TraceData;
use paratreet_telemetry::Json;

/// The stage spans a complete request chain carries, in pipeline order.
pub const STAGE_NAMES: [&str; 5] = ["admitted", "queued", "pinned", "executed", "responded"];

/// One re-assembled request: the root span and its stage children.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestChain {
    /// The request id (`client << 32 | seq`).
    pub request: u64,
    /// Index of the root `request` span in `trace.spans`.
    pub root: usize,
    /// Indices of the stage children, pipeline order (missing stages
    /// are skipped — [`RequestChain::is_complete`] checks for all 5).
    pub stages: Vec<usize>,
}

impl RequestChain {
    /// True when every stage of [`STAGE_NAMES`] is present.
    pub fn is_complete(&self, trace: &TraceData) -> bool {
        STAGE_NAMES.iter().all(|name| self.stages.iter().any(|&i| trace.spans[i].name == *name))
    }

    /// Total latency (µs): the root span's duration.
    pub fn total_us(&self, trace: &TraceData) -> f64 {
        trace.spans[self.root].dur_us
    }
}

fn build_chain(trace: &TraceData, root: usize) -> RequestChain {
    let root_id = trace.spans[root].id;
    let mut stages: Vec<usize> = trace
        .spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.parent.is_some() && s.parent == root_id)
        .map(|(i, _)| i)
        .collect();
    // Pipeline order, then time for duplicates.
    let stage_rank = |i: usize| {
        let name = trace.spans[i].name.as_str();
        STAGE_NAMES.iter().position(|s| *s == name).unwrap_or(STAGE_NAMES.len())
    };
    stages.sort_by(|&a, &b| {
        stage_rank(a)
            .cmp(&stage_rank(b))
            .then(trace.spans[a].start_us.total_cmp(&trace.spans[b].start_us))
    });
    RequestChain { request: trace.spans[root].request.unwrap_or(0), root, stages }
}

/// Re-assembles every traced request in the trace, ascending by
/// request id (then by root span id, for the degenerate case of a
/// client reusing ids).
pub fn request_chains(trace: &TraceData) -> Vec<RequestChain> {
    let mut chains: Vec<RequestChain> = trace
        .spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == "request" && s.id.is_some())
        .map(|(i, _)| build_chain(trace, i))
        .collect();
    chains.sort_by_key(|c| (c.request, trace.spans[c.root].id));
    chains
}

/// Resolves the p999 exemplar recorded under
/// `serve.latency.<class>.p999_exemplar.*` in a metrics dump to its
/// span chain. Returns `None` when the class recorded no exemplar
/// (span id 0) or the trace does not contain the span.
pub fn resolve_exemplar(trace: &TraceData, metrics: &Json, class: &str) -> Option<RequestChain> {
    let get = |leaf: &str| {
        metrics
            .get(&format!("serve.latency.{class}.p999_exemplar.{leaf}"))
            .and_then(Json::as_f64)
            .map(|v| v as u64)
    };
    let span_id = get("span")?;
    let request = get("request")?;
    if span_id == 0 {
        return None;
    }
    let root =
        trace.spans.iter().position(|s| s.id == Some(span_id) && s.request == Some(request))?;
    Some(build_chain(trace, root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanRec;
    use paratreet_telemetry::json::parse;

    fn span(
        name: &str,
        start: f64,
        dur: f64,
        id: Option<u64>,
        parent: Option<u64>,
        request: u64,
    ) -> SpanRec {
        SpanRec {
            name: name.to_string(),
            start_us: start,
            dur_us: dur,
            rank: 0,
            worker: 0,
            key: None,
            id,
            parent,
            request: Some(request),
        }
    }

    fn serve_trace() -> TraceData {
        let mut spans = vec![span("request", 0.0, 100.0, Some(10), None, 7)];
        for (i, stage) in STAGE_NAMES.iter().enumerate() {
            spans.push(span(stage, i as f64 * 20.0, 20.0, Some(11 + i as u64), Some(10), 7));
        }
        // A second, incomplete request (no "responded" span).
        spans.push(span("request", 50.0, 10.0, Some(20), None, 9));
        spans.push(span("queued", 51.0, 2.0, Some(21), Some(20), 9));
        TraceData { clock: "wall".into(), spans, counters: vec![] }
    }

    #[test]
    fn chains_group_stages_under_roots() {
        let trace = serve_trace();
        let chains = request_chains(&trace);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].request, 7);
        assert!(chains[0].is_complete(&trace));
        assert_eq!(chains[0].total_us(&trace), 100.0);
        let names: Vec<&str> =
            chains[0].stages.iter().map(|&i| trace.spans[i].name.as_str()).collect();
        assert_eq!(names, STAGE_NAMES.to_vec());
        assert!(!chains[1].is_complete(&trace), "missing stages must be detected");
    }

    #[test]
    fn exemplar_resolves_to_its_chain() {
        let trace = serve_trace();
        let metrics = parse(concat!(
            r#"{"serve.latency.knn.p999_exemplar.value":100000,"#,
            r#""serve.latency.knn.p999_exemplar.request":7,"#,
            r#""serve.latency.knn.p999_exemplar.span":10,"#,
            r#""serve.latency.ball.p999_exemplar.value":0,"#,
            r#""serve.latency.ball.p999_exemplar.request":0,"#,
            r#""serve.latency.ball.p999_exemplar.span":0}"#
        ))
        .unwrap();
        let chain = resolve_exemplar(&trace, &metrics, "knn").expect("resolvable");
        assert_eq!(chain.request, 7);
        assert!(chain.is_complete(&trace));
        assert!(resolve_exemplar(&trace, &metrics, "ball").is_none(), "empty exemplar");
        assert!(resolve_exemplar(&trace, &metrics, "ray").is_none(), "absent keys");
    }
}
