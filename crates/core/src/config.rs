//! Run configuration — the paper's `Configuration` object (§II-D-2).
//!
//! "The user specifies various run and performance parameters. These
//! include input file name, number of iterations, load balancing period,
//! minimum number of Subtrees and Partitions, decomposition type, tree
//! type, among others. Users can also tune other performance-specific
//! hyperparameters: number of nodes fetched per request, number of
//! branch nodes shared across all processors."

use paratreet_tree::TreeType;

/// The built-in decomposition types for Partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DecompType {
    /// Space-filling-curve slices uniform in particle count — the classic
    /// load-balanced decomposition.
    Sfc,
    /// Octree-node-aligned decomposition (partitions are octree regions;
    /// load can imbalance for non-uniform inputs — the Fig. 13 effect).
    Oct,
    /// Binary median splits cycling axes (k-d style), uniform in count.
    Kd,
    /// Binary median splits along the longest axis — the disk case
    /// study's custom decomposition.
    LongestDim,
}

impl DecompType {
    /// Harness-output name.
    pub fn name(self) -> &'static str {
        match self {
            DecompType::Sfc => "sfc",
            DecompType::Oct => "oct",
            DecompType::Kd => "kd",
            DecompType::LongestDim => "longest-dim",
        }
    }
}

/// Which space-filling curve keys particles for SFC decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SfcCurve {
    /// Morton / Z-order: cheap, and its keys double as octree digits.
    Morton,
    /// Hilbert: consecutive keys are always adjacent cells, so
    /// equal-count slices have smaller surface area — less
    /// cross-partition communication (what ChaNGa's Peano–Hilbert
    /// decomposition buys). Only affects `DecompType::Sfc`; octree
    /// decomposition needs Morton's digit structure.
    Hilbert,
}

impl SfcCurve {
    /// Harness-output name.
    pub fn name(self) -> &'static str {
        match self {
            SfcCurve::Morton => "morton",
            SfcCurve::Hilbert => "hilbert",
        }
    }
}

/// The built-in traversal schedules (§II-A-2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraversalKind {
    /// ParaTreeT's default: node-frontier order, evaluating every
    /// interested bucket against each tree node ("processes each bucket
    /// for each tree node" — the locality-enhancing loop transposition).
    TopDown,
    /// The standard per-bucket depth-first walk — "BasicTrav" in
    /// Fig. 10. Same interactions, one full tree walk per bucket.
    BasicDfs,
    /// Up-and-down: each bucket starts at its own leaf and expands
    /// outward toward the root, visiting nearer data first. Preferred
    /// when pruning criteria tighten during the traversal (k-nearest
    /// neighbours).
    UpAndDown,
    /// Dual-tree (Gray & Moore): source and target are both tree nodes;
    /// the visitor's `cell()` decides whether to open both (B²
    /// interactions) or only the source (B interactions), and a pruned
    /// source applies to every bucket beneath the target node at once.
    /// Shared-memory engine only.
    DualTree,
}

/// Incremental tree maintenance knobs. With `enabled`, the engines keep
/// the global tree alive across iterations — classifying all movers in
/// one pass, applying escapees as sorted per-Subtree batches, and
/// re-accumulating `Data` along dirty paths — instead of rebuilding
/// from scratch. Structural drift is bounded by weight-balance
/// invariants rather than ad-hoc churn counters: a median-split Subtree
/// is rebuilt alone when some interior node's heaviest child exceeds
/// `balance_alpha` of its weight or its depth exceeds the α-balance
/// depth bound by `balance_depth_slack` levels; when the partition-cost
/// imbalance of the maintained tree exceeds `imbalance_rebuild`, the
/// whole tree is rebuilt and re-decomposed.
#[derive(Clone, Copy, Debug)]
pub struct IncrementalConfig {
    /// Maintain the tree across iterations instead of rebuilding.
    pub enabled: bool,
    /// BB[α] weight-balance factor: rebuild a median-split Subtree when
    /// an interior node's heaviest child holds more than this fraction
    /// of the node's particles. Position-determined trees (octree,
    /// binary-oct) are exempt — their maintained structure already
    /// equals a fresh build's, so a rebuild cannot improve them.
    pub balance_alpha: f64,
    /// Extra levels a median-split Subtree may exceed the α-balance
    /// depth bound (`log(n/bucket) / log(1/α)`) before being rebuilt.
    pub balance_depth_slack: u32,
    /// Fall back to a whole-tree rebuild + re-decomposition when the
    /// max/mean particle load across Partitions exceeds this factor.
    pub imbalance_rebuild: f64,
    /// Fractional padding applied to the universe box at seed time so
    /// slowly drifting hull particles stay inside the maintained root
    /// regions. Zero keeps the seed bit-identical to a fresh build (the
    /// zero-motion identity), at the cost of more full-rebuild
    /// fallbacks for expanding systems.
    pub universe_pad: f64,
    /// Threads used for the batch classify/apply/flatten phases over
    /// disjoint Subtrees (0 = one per available core, capped at the
    /// Subtree count). The deterministic DES engine always runs with 1.
    pub batch_threads: usize,
}

impl Default for IncrementalConfig {
    fn default() -> IncrementalConfig {
        IncrementalConfig {
            enabled: false,
            balance_alpha: 0.7,
            balance_depth_slack: 2,
            imbalance_rebuild: 2.5,
            universe_pad: 0.05,
            batch_threads: 0,
        }
    }
}

/// Framework configuration.
#[derive(Clone, Debug)]
pub struct Configuration {
    /// Spatial tree type for Subtrees.
    pub tree_type: TreeType,
    /// Decomposition type for Partitions.
    pub decomp_type: DecompType,
    /// Maximum particles per leaf bucket.
    pub bucket_size: usize,
    /// Minimum number of Subtrees (tree pieces).
    pub n_subtrees: usize,
    /// Minimum number of Partitions (work pieces).
    pub n_partitions: usize,
    /// Levels of descendants shipped per fill ("number of nodes fetched
    /// per request").
    pub fetch_depth: u32,
    /// Number of simulation iterations to run.
    pub iterations: usize,
    /// RNG seed threaded through anything stochastic.
    pub seed: u64,
    /// Space-filling curve used by SFC decomposition.
    pub sfc: SfcCurve,
    /// Incremental tree maintenance (off by default: full rebuild per
    /// iteration, the paper's pipeline).
    pub incremental: IncrementalConfig,
}

impl Default for Configuration {
    fn default() -> Configuration {
        Configuration {
            tree_type: TreeType::Octree,
            decomp_type: DecompType::Sfc,
            bucket_size: 16,
            n_subtrees: 8,
            n_partitions: 8,
            fetch_depth: 3,
            iterations: 1,
            seed: 1,
            sfc: SfcCurve::Morton,
            incremental: IncrementalConfig::default(),
        }
    }
}

impl Configuration {
    /// True when Partitions and Subtrees use the same splitters, letting
    /// the framework bind them by location so buckets never split
    /// (the optimisation noted at the end of §II-C-1).
    pub fn partitions_match_subtrees(&self) -> bool {
        self.n_partitions == self.n_subtrees
            && matches!(
                (self.decomp_type, self.tree_type),
                (DecompType::Oct, TreeType::Octree)
                    | (DecompType::Kd, TreeType::KdTree)
                    | (DecompType::LongestDim, TreeType::LongestDim)
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sfc_octree() {
        let c = Configuration::default();
        assert_eq!(c.tree_type, TreeType::Octree);
        assert_eq!(c.decomp_type, DecompType::Sfc);
        assert!(!c.partitions_match_subtrees()); // sfc != oct splitters
    }

    #[test]
    fn matching_splitters_detected() {
        let c = Configuration {
            decomp_type: DecompType::Oct,
            tree_type: TreeType::Octree,
            ..Default::default()
        };
        assert!(c.partitions_match_subtrees());
        let c2 = Configuration { n_partitions: 9, ..c };
        assert!(!c2.partitions_match_subtrees());
        let c3 = Configuration {
            decomp_type: DecompType::LongestDim,
            tree_type: TreeType::LongestDim,
            ..Configuration::default()
        };
        assert!(c3.partitions_match_subtrees());
    }
}
