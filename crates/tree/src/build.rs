//! Top-down tree construction with bottom-up `Data` accumulation.
//!
//! "Starting with a set of assigned particles and an artificial root
//! node, each processor recursively creates node children and assigns
//! them particles until each leaf represents a bucket" (paper §I). The
//! builder reorders its particle array in place so that every leaf owns a
//! contiguous range, then fills `Data` from the leaves toward the root.
//!
//! Large nodes split in parallel with rayon; each child subtree builds
//! into its own local arena and the parent stitches the arenas together,
//! so no synchronisation is needed during the build itself — the same
//! "limits synchronization during tree build" property the paper gets
//! from building Subtrees independently.

use crate::node::{BuildNode, BuiltTree, NodeIdx, NodeShape, NO_NODE};
use crate::{Data, TreeType};
use paratreet_geometry::{BoundingBox, NodeKey, ROOT_KEY};
use paratreet_particles::Particle;
use rayon::prelude::*;

/// Below this many particles a node always splits sequentially.
const PARALLEL_THRESHOLD: usize = 4096;

/// Configuration for building one (sub)tree.
#[derive(Clone, Copy, Debug)]
pub struct TreeBuilder {
    /// Which split rule to apply.
    pub tree_type: TreeType,
    /// Maximum particles per leaf bucket (the paper's `max_bucket_size`).
    pub bucket_size: usize,
    /// Split large nodes with rayon.
    pub parallel: bool,
    /// Key of the subtree root in the global tree ([`ROOT_KEY`] when
    /// building a whole tree).
    pub root_key: NodeKey,
    /// Depth of the subtree root below the global root (drives k-d axis
    /// cycling so a subtree splits the same way the global tree would).
    pub root_depth: u32,
}

impl TreeBuilder {
    /// A builder for a whole tree with the paper-ish default bucket size.
    pub fn new(tree_type: TreeType) -> TreeBuilder {
        TreeBuilder {
            tree_type,
            bucket_size: 16,
            parallel: true,
            root_key: ROOT_KEY,
            root_depth: 0,
        }
    }

    /// Sets the bucket size.
    pub fn bucket_size(mut self, b: usize) -> TreeBuilder {
        assert!(b > 0, "bucket size must be positive");
        self.bucket_size = b;
        self
    }

    /// Enables or disables rayon splitting.
    pub fn parallel(mut self, p: bool) -> TreeBuilder {
        self.parallel = p;
        self
    }

    /// Builds this subtree rooted at `root_key` covering `root_bbox`.
    ///
    /// Takes ownership of the particles, reorders them, and returns the
    /// arena plus the reordered array. For octrees, `root_bbox` should be
    /// (an octant of) a cube so octants stay cubical.
    pub fn build<D: Data>(
        &self,
        mut particles: Vec<Particle>,
        root_bbox: BoundingBox,
    ) -> BuiltTree<D> {
        let bits = self.tree_type.bits_per_level();
        // Stop splitting when the key cannot hold another digit.
        let max_depth = (63 - self.root_key.level(bits) * bits) / bits;
        let arena = self.node_arena(
            &mut particles,
            0,
            root_bbox,
            self.root_key,
            self.root_depth,
            0,
            max_depth,
        );
        BuiltTree { nodes: arena, particles, bits_per_level: bits }
    }

    /// Recursively builds the node for `particles` into a local arena
    /// whose root is index 0. Bucket ranges are absolute (offset by
    /// `offset`); child arena indices are stitched by the caller's frame.
    #[allow(clippy::too_many_arguments)]
    fn node_arena<D: Data>(
        &self,
        particles: &mut [Particle],
        offset: u32,
        bbox: BoundingBox,
        key: NodeKey,
        global_depth: u32,
        local_depth: u32,
        max_local_depth: u32,
    ) -> Vec<BuildNode<D>> {
        let n = particles.len() as u32;
        if particles.is_empty() {
            return vec![BuildNode {
                key,
                bbox,
                shape: NodeShape::Empty,
                children: [NO_NODE; 8],
                data: D::default(),
                n_particles: 0,
                depth: local_depth,
            }];
        }
        if particles.len() <= self.bucket_size || local_depth >= max_local_depth {
            // `local_depth == max_local_depth` forces a (possibly oversize)
            // leaf when key bits run out — only reachable with many
            // coincident particles.
            let tight = BoundingBox::around(particles.iter().map(|p| p.pos));
            let _ = tight; // leaf keeps the region box; Data sees the bucket
            return vec![BuildNode {
                key,
                bbox,
                shape: NodeShape::Leaf { start: offset, end: offset + n },
                children: [NO_NODE; 8],
                data: D::from_leaf(particles, &bbox),
                n_particles: n,
                depth: local_depth,
            }];
        }

        // Split the slice into per-child groups plus their boxes/keys.
        let groups = self.split(particles, &bbox, key, global_depth);

        // Recurse — in parallel when the node is big enough.
        let mut running = offset;
        let mut tasks: Vec<(usize, &mut [Particle], u32, BoundingBox, NodeKey)> = Vec::new();
        {
            let mut rest = particles;
            for (slot, len, child_bbox, child_key) in &groups {
                let (head, tail) = rest.split_at_mut(*len);
                tasks.push((*slot, head, running, *child_bbox, *child_key));
                running += *len as u32;
                rest = tail;
            }
        }
        let build_child =
            |(slot, slice, off, cb, ck): (usize, &mut [Particle], u32, BoundingBox, NodeKey)| {
                (
                    slot,
                    self.node_arena::<D>(
                        slice,
                        off,
                        cb,
                        ck,
                        global_depth + 1,
                        local_depth + 1,
                        max_local_depth,
                    ),
                )
            };
        let child_arenas: Vec<(usize, Vec<BuildNode<D>>)> =
            if self.parallel && n as usize >= PARALLEL_THRESHOLD {
                tasks.into_par_iter().map(build_child).collect()
            } else {
                tasks.into_iter().map(build_child).collect()
            };

        // Stitch: parent at index 0, then each child arena with indices
        // shifted by its base.
        let total: usize = 1 + child_arenas.iter().map(|(_, a)| a.len()).sum::<usize>();
        let mut arena = Vec::with_capacity(total);
        let mut parent = BuildNode {
            key,
            bbox,
            shape: NodeShape::Internal,
            children: [NO_NODE; 8],
            data: D::default(),
            n_particles: n,
            depth: local_depth,
        };
        // Reserve slot 0 for the parent; fill after children are placed.
        arena.push(parent.clone());
        for (slot, child_arena) in child_arenas {
            let base = arena.len() as NodeIdx;
            parent.children[slot] = base;
            parent.data.merge(&child_arena[0].data);
            for mut node in child_arena {
                for c in node.children.iter_mut() {
                    if *c != NO_NODE {
                        *c += base;
                    }
                }
                arena.push(node);
            }
        }
        arena[0] = parent;
        arena
    }

    /// Partitions `particles` in place into child groups and returns
    /// `(child slot, group length, child bbox, child key)` in slice order.
    /// Empty octree octants are skipped entirely (no Empty nodes are
    /// materialised for them; `NO_NODE` marks them absent).
    /// Crate-visible so incremental maintenance splits overfull leaves
    /// with exactly this rule.
    pub(crate) fn split(
        &self,
        particles: &mut [Particle],
        bbox: &BoundingBox,
        key: NodeKey,
        global_depth: u32,
    ) -> Vec<(usize, usize, BoundingBox, NodeKey)> {
        let bits = self.tree_type.bits_per_level();
        match self.tree_type {
            TreeType::Octree => {
                particles.sort_unstable_by_key(|p| bbox.octant_of(p.pos));
                let mut out = Vec::new();
                let mut start = 0;
                while start < particles.len() {
                    let oct = bbox.octant_of(particles[start].pos);
                    let len = particles[start..]
                        .iter()
                        .take_while(|p| bbox.octant_of(p.pos) == oct)
                        .count();
                    out.push((oct, len, bbox.octant(oct), key.child(oct, bits)));
                    start += len;
                }
                out
            }
            TreeType::BinaryOct => {
                // Spatial-midpoint binary split along the cycling axis.
                let axis =
                    self.tree_type.cycling_axis(global_depth).expect("binary oct cycles axes");
                let plane = bbox.center().component(axis.index());
                particles.sort_unstable_by(|a, b| {
                    a.pos
                        .component(axis.index())
                        .partial_cmp(&b.pos.component(axis.index()))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mid = particles.partition_point(|p| p.pos.component(axis.index()) < plane);
                let (lo_box, hi_box) = bbox.split_at(axis, plane);
                let mut out = Vec::new();
                if mid > 0 {
                    out.push((0, mid, lo_box, key.child(0, bits)));
                }
                if mid < particles.len() {
                    out.push((1, particles.len() - mid, hi_box, key.child(1, bits)));
                }
                out
            }
            TreeType::KdTree | TreeType::LongestDim => {
                let axis = match self.tree_type.cycling_axis(global_depth) {
                    Some(a) => a,
                    None => bbox.longest_axis(),
                };
                let mid = particles.len() / 2;
                particles.select_nth_unstable_by(mid, |a, b| {
                    a.pos
                        .component(axis.index())
                        .partial_cmp(&b.pos.component(axis.index()))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let plane = particles[mid].pos.component(axis.index());
                let (lo_box, hi_box) = bbox.split_at(axis, plane);
                vec![
                    (0, mid, lo_box, key.child(0, bits)),
                    (1, particles.len() - mid, hi_box, key.child(1, bits)),
                ]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::count_reachable;
    use crate::CountData;
    use paratreet_particles::gen;
    use paratreet_particles::ParticleVec;

    fn build(tree_type: TreeType, n: usize, bucket: usize) -> BuiltTree<CountData> {
        let ps = gen::uniform_cube(n, 42, 1.0, 1.0);
        let bbox = ps.bounding_box().padded(1e-9);
        let bbox = if tree_type == TreeType::Octree { bbox.bounding_cube() } else { bbox };
        TreeBuilder::new(tree_type).bucket_size(bucket).build(ps, bbox)
    }

    #[test]
    fn octree_build_is_valid() {
        let t = build(TreeType::Octree, 2000, 16);
        t.validate(16).unwrap();
        assert_eq!(t.root().n_particles, 2000);
        assert_eq!(t.root().data.count, 2000);
        assert_eq!(count_reachable(&t), t.nodes.len());
    }

    #[test]
    fn kd_build_is_valid_and_balanced() {
        let t = build(TreeType::KdTree, 1024, 8);
        t.validate(8).unwrap();
        // Median splits: depth is exactly ceil(log2(1024/8)) = 7.
        assert_eq!(t.max_depth(), 7);
        // All leaves within one level of each other in size.
        for &l in &t.leaf_indices() {
            let n = t.node(l).n_particles;
            assert!(n == 8, "kd leaf of {n} particles");
        }
    }

    #[test]
    fn longest_dim_prefers_long_axis() {
        // A pancake distribution: x spans 100, y and z span 1. The first
        // several splits must all be along x.
        let mut ps = gen::uniform_cube(512, 7, 0.5, 1.0);
        for p in &mut ps {
            p.pos.x *= 100.0;
        }
        let bbox = ps.bounding_box().padded(1e-9);
        let t: BuiltTree<CountData> =
            TreeBuilder::new(TreeType::LongestDim).bucket_size(16).build(ps, bbox);
        t.validate(16).unwrap();
        // Root's children split along x: their boxes tile in x.
        let root = t.root();
        let c0 = t.node(root.children[0]);
        let c1 = t.node(root.children[1]);
        assert_eq!(c0.bbox.hi.x, c1.bbox.lo.x);
        assert_eq!(c0.bbox.lo.y, c1.bbox.lo.y);
    }

    #[test]
    fn buckets_tile_particle_array() {
        let t = build(TreeType::Octree, 500, 10);
        let leaves = t.leaf_indices();
        let mut covered = 0;
        for &l in &leaves {
            let r = t.node(l).bucket_range().unwrap();
            assert_eq!(r.start, covered, "buckets must be contiguous in DFS order");
            covered = r.end;
        }
        assert_eq!(covered, t.particles.len());
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let ps = gen::clustered(6000, 3, 5, 1.0, 1.0);
        let bbox = ps.bounding_box().padded(1e-9).bounding_cube();
        let seq: BuiltTree<CountData> =
            TreeBuilder::new(TreeType::Octree).parallel(false).build(ps.clone(), bbox);
        let par: BuiltTree<CountData> =
            TreeBuilder::new(TreeType::Octree).parallel(true).build(ps, bbox);
        assert_eq!(seq.nodes.len(), par.nodes.len());
        assert_eq!(seq.root().data.count, par.root().data.count);
        for (a, b) in seq.nodes.iter().zip(&par.nodes) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.shape, b.shape);
            assert_eq!(a.n_particles, b.n_particles);
        }
        assert_eq!(seq.particles, par.particles);
    }

    #[test]
    fn coincident_particles_terminate() {
        // 100 particles at the same point: octree cannot separate them;
        // the build must cap depth and emit one oversize leaf.
        let ps: Vec<_> = (0..100)
            .map(|i| {
                paratreet_particles::Particle::point_mass(
                    i,
                    1.0,
                    paratreet_geometry::Vec3::splat(0.5),
                )
            })
            .collect();
        let bbox =
            BoundingBox::new(paratreet_geometry::Vec3::ZERO, paratreet_geometry::Vec3::splat(1.0));
        let t: BuiltTree<CountData> =
            TreeBuilder::new(TreeType::Octree).bucket_size(4).build(ps, bbox);
        assert_eq!(t.root().n_particles, 100);
        let leaves = t.leaf_indices();
        assert_eq!(leaves.len(), 1);
        assert_eq!(t.node(leaves[0]).n_particles, 100);
    }

    #[test]
    fn subtree_root_key_prefixes_all_nodes() {
        let sub_key = ROOT_KEY.child(5, 3);
        let ps = gen::uniform_cube(300, 3, 1.0, 1.0);
        let bbox = ps.bounding_box().padded(1e-9).bounding_cube();
        let builder =
            TreeBuilder { root_key: sub_key, root_depth: 1, ..TreeBuilder::new(TreeType::Octree) };
        let t: BuiltTree<CountData> = builder.build(ps, bbox.octant(5));
        for n in &t.nodes {
            assert!(n.key == sub_key || sub_key.is_ancestor_of(n.key, 3));
        }
    }

    #[test]
    fn single_particle_tree() {
        let t = build(TreeType::Octree, 1, 16);
        t.validate(16).unwrap();
        assert_eq!(t.nodes.len(), 1);
        assert!(t.root().is_leaf());
    }

    #[test]
    fn empty_particle_set_yields_empty_root() {
        let bbox =
            BoundingBox::new(paratreet_geometry::Vec3::ZERO, paratreet_geometry::Vec3::splat(1.0));
        let t: BuiltTree<CountData> = TreeBuilder::new(TreeType::Octree).build(vec![], bbox);
        assert_eq!(t.nodes.len(), 1);
        assert_eq!(t.root().shape, NodeShape::Empty);
    }

    #[test]
    fn data_counts_match_everywhere() {
        let t = build(TreeType::KdTree, 777, 12);
        for n in &t.nodes {
            assert_eq!(n.data.count, n.n_particles as u64);
        }
    }

    #[test]
    fn clustered_octree_is_deeper_than_uniform() {
        let mk = |ps: Vec<paratreet_particles::Particle>| {
            let bbox = ps.bounding_box().padded(1e-9).bounding_cube();
            TreeBuilder::new(TreeType::Octree).bucket_size(8).build::<CountData>(ps, bbox)
        };
        let uni = mk(gen::uniform_cube(4000, 9, 1.0, 1.0));
        let clu = mk(gen::clustered(4000, 3, 9, 1.0, 1.0));
        assert!(
            clu.max_depth() > uni.max_depth(),
            "clustered {} vs uniform {}",
            clu.max_depth(),
            uni.max_depth()
        );
    }
}
