//! Direct O(N²) summation — the accuracy ground truth.

use paratreet_apps::gravity::grav_exact;
use paratreet_geometry::Vec3;
use paratreet_particles::Particle;
use rayon::prelude::*;

/// Computes exact pairwise accelerations and potentials into the
/// particles (replacing the accumulators), with Plummer softening.
pub fn direct_gravity(particles: &mut [Particle], g: f64) {
    let snapshot: Vec<Particle> = particles.to_vec();
    particles.par_iter_mut().for_each(|p| {
        p.acc = Vec3::ZERO;
        p.potential = 0.0;
        for s in &snapshot {
            if s.id == p.id {
                continue;
            }
            let (acc, pot) = grav_exact(p.pos, s.pos, s.mass, p.softening.max(s.softening));
            p.acc += acc * g;
            p.potential += pot * g * p.mass;
        }
    });
}

/// Total energy (kinetic + ½Σ potential) of a particle set whose
/// potentials were filled by [`direct_gravity`].
pub fn total_energy(particles: &[Particle]) -> f64 {
    let ke: f64 = particles.iter().map(|p| p.kinetic_energy()).sum();
    let pe: f64 = particles.iter().map(|p| p.potential).sum::<f64>() * 0.5;
    ke + pe
}

/// RMS relative acceleration error of `test` against `reference`,
/// matching particles by id. Panics if the id sets differ.
pub fn rms_acc_error(test: &[Particle], reference: &[Particle]) -> f64 {
    let by_id: std::collections::HashMap<u64, &Particle> =
        reference.iter().map(|p| (p.id, p)).collect();
    let mut sum = 0.0;
    let mut n = 0usize;
    for p in test {
        let r = by_id[&p.id];
        let denom = r.acc.norm();
        if denom > 0.0 {
            let rel = (p.acc - r.acc).norm() / denom;
            sum += rel * rel;
            n += 1;
        }
    }
    (sum / n.max(1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_particles::{gen, Particle};

    #[test]
    fn two_body_forces_are_equal_and_opposite() {
        let mut ps = vec![
            Particle::point_mass(0, 2.0, Vec3::ZERO),
            Particle::point_mass(1, 3.0, Vec3::new(1.0, 0.0, 0.0)),
        ];
        direct_gravity(&mut ps, 1.0);
        let f0 = ps[0].acc * ps[0].mass;
        let f1 = ps[1].acc * ps[1].mass;
        assert!((f0 + f1).norm() < 1e-14);
        assert!(f0.x > 0.0, "0 attracted toward 1");
    }

    #[test]
    fn net_momentum_change_is_zero() {
        let mut ps = gen::plummer(200, 3, 1.0, 1.0);
        direct_gravity(&mut ps, 1.0);
        let net: Vec3 = ps.iter().map(|p| p.acc * p.mass).fold(Vec3::ZERO, |a, v| a + v);
        assert!(net.norm() < 1e-10, "net force {net:?}");
    }

    #[test]
    fn plummer_is_near_virial_equilibrium() {
        // For a Plummer sphere in equilibrium, 2K + W ≈ 0.
        let mut ps = gen::plummer(5000, 7, 1.0, 1.0);
        direct_gravity(&mut ps, 1.0);
        let ke: f64 = ps.iter().map(|p| p.kinetic_energy()).sum();
        let pe: f64 = ps.iter().map(|p| p.potential).sum::<f64>() * 0.5;
        let virial = (2.0 * ke + pe).abs() / pe.abs();
        assert!(virial < 0.15, "virial ratio residual {virial}");
    }

    #[test]
    fn rms_error_of_identical_sets_is_zero() {
        let mut ps = gen::uniform_cube(50, 1, 1.0, 1.0);
        direct_gravity(&mut ps, 1.0);
        assert_eq!(rms_acc_error(&ps, &ps), 0.0);
    }
}
