//! Shared plumbing for the evaluation harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index). They share a tiny argument
//! parser — `--particles N`, `--seed S`, and harness-specific flags —
//! and column-aligned text output so results read like the paper's
//! tables.

use std::collections::HashMap;

/// Parsed `--key value` command-line options.
pub struct Args {
    opts: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`. Flags must come as `--key value`.
    pub fn parse() -> Args {
        let mut opts = HashMap::new();
        let mut iter = std::env::args().skip(1);
        while let Some(k) = iter.next() {
            if let Some(name) = k.strip_prefix("--") {
                if let Some(v) = iter.next() {
                    opts.insert(name.to_string(), v);
                }
            }
        }
        Args { opts }
    }

    /// A `usize` option with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.opts.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// A `u64` option with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.opts.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// An `f64` option with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.opts.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// A string option with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.opts.get(key).cloned().unwrap_or_else(|| default.to_string())
    }
}

/// Prints a header row followed by a separator, with every column padded
/// to `width`.
pub fn print_header(columns: &[&str], width: usize) {
    let row: Vec<String> = columns.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat((width + 1) * columns.len()));
}

/// Formats one row of already-stringified cells at `width`.
pub fn print_row(cells: &[String], width: usize) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", row.join(" "));
}

/// Human-readable seconds (µs/ms/s autoscale).
pub fn fmt_seconds(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// Human-readable byte counts.
pub fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KB", b as f64 / 1024.0)
    } else if b < 1024 * 1024 * 1024 {
        format!("{:.1}MB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.2}GB", b as f64 / (1024.0 * 1024.0 * 1024.0))
    }
}

/// A crude ASCII bar for profile plots: `frac` in 0..=1 over `width`.
pub fn bar(frac: f64, width: usize) -> String {
    let n = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(n), ".".repeat(width - n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_format_autoscales() {
        assert_eq!(fmt_seconds(5e-5), "50.0us");
        assert_eq!(fmt_seconds(0.0123), "12.30ms");
        assert_eq!(fmt_seconds(2.5), "2.500s");
    }

    #[test]
    fn bytes_format_autoscales() {
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
    }

    #[test]
    fn bar_is_bounded() {
        assert_eq!(bar(0.0, 10), "..........");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(7.0, 4), "####");
    }
}
