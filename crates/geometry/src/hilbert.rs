//! 3-D Hilbert space-filling-curve keys.
//!
//! Morton order (the default SFC) is cheap but jumps across space at
//! octant boundaries; the Hilbert curve visits every cell of the grid in
//! a path whose consecutive cells are always face neighbours, so
//! equal-count slices of the curve have smaller surface area — fewer
//! partition-boundary buckets and fewer remote fetches during traversal.
//! Production tree codes (ChaNGa among them) use a Hilbert-style
//! (Peano–Hilbert) decomposition for exactly this reason.
//!
//! The conversion is Skilling's transpose algorithm (J. Skilling,
//! "Programming the Hilbert curve", AIP Conf. Proc. 707, 2004): Gray
//! de/encoding plus bit rotations on the coordinate "transpose",
//! operating one bit plane at a time.

use crate::morton::{spread_bits, MORTON_BITS_PER_DIM};
use crate::{BoundingBox, Vec3};

/// Number of bits per dimension (matches the Morton resolution so the
/// two curves index the same grid).
pub const HILBERT_BITS_PER_DIM: u32 = MORTON_BITS_PER_DIM;

/// Converts grid coordinates to the Hilbert "transpose" in place
/// (Skilling's `AxestoTranspose`).
fn axes_to_transpose(x: &mut [u64; 3], bits: u32) {
    // Inverse undo.
    let mut q = 1u64 << (bits - 1);
    while q > 1 {
        let p = q - 1;
        for i in 0..3 {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..3 {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u64;
    q = 1u64 << (bits - 1);
    while q > 1 {
        if x[2] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Inverse of [`axes_to_transpose`] (Skilling's `TransposetoAxes`).
fn transpose_to_axes(x: &mut [u64; 3], bits: u32) {
    // Gray decode.
    let mut t = x[2] >> 1;
    for i in (1..3).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u64;
    while q != (1u64 << bits) {
        let p = q - 1;
        for i in (0..3).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// The Hilbert distance (curve index) of grid cell `(ix, iy, iz)` on a
/// `2^bits`-per-side grid. The result occupies `3 × bits` bits.
pub fn hilbert_index(ix: u64, iy: u64, iz: u64, bits: u32) -> u64 {
    debug_assert!(bits <= HILBERT_BITS_PER_DIM);
    let mask = (1u64 << bits) - 1;
    let mut x = [ix & mask, iy & mask, iz & mask];
    axes_to_transpose(&mut x, bits);
    // Interleave the transposed bit planes, x[0]'s bit first (most
    // significant), exactly as Skilling specifies.
    if bits == MORTON_BITS_PER_DIM {
        (spread_bits(x[0]) << 2) | (spread_bits(x[1]) << 1) | spread_bits(x[2])
    } else {
        let mut out = 0u64;
        for b in (0..bits).rev() {
            for xi in &x {
                out = (out << 1) | ((xi >> b) & 1);
            }
        }
        out
    }
}

/// Inverse of [`hilbert_index`]: the grid cell at curve position `h`.
pub fn hilbert_cell(h: u64, bits: u32) -> (u64, u64, u64) {
    let mut x = [0u64; 3];
    for b in 0..bits {
        // Bit planes were written x[0] first from the top.
        let shift = 3 * (bits - 1 - b);
        let group = (h >> shift) & 0b111;
        x[0] |= ((group >> 2) & 1) << (bits - 1 - b);
        x[1] |= ((group >> 1) & 1) << (bits - 1 - b);
        x[2] |= (group & 1) << (bits - 1 - b);
    }
    transpose_to_axes(&mut x, bits);
    (x[0], x[1], x[2])
}

/// The Hilbert key of position `p` within `universe`, on the same
/// 21-bit-per-dimension grid as [`crate::morton_key`]. Out-of-box
/// points clamp to the surface cells.
pub fn hilbert_key(p: Vec3, universe: &BoundingBox) -> u64 {
    let quant = |v: f64, lo: f64, hi: f64| -> u64 {
        let cells = (1u64 << HILBERT_BITS_PER_DIM) as f64;
        let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
        ((t * cells) as u64).min((1 << HILBERT_BITS_PER_DIM) - 1)
    };
    hilbert_index(
        quant(p.x, universe.lo.x, universe.hi.x),
        quant(p.y, universe.lo.y, universe.hi.y),
        quant(p.z, universe.lo.z, universe.hi.z),
        HILBERT_BITS_PER_DIM,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bijective_on_a_small_grid() {
        // Every cell of an 8³ grid maps to a distinct index in range,
        // and the inverse recovers the cell.
        let bits = 3;
        let n = 1u64 << bits;
        let mut seen = vec![false; (n * n * n) as usize];
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    let h = hilbert_index(ix, iy, iz, bits);
                    assert!(h < n * n * n);
                    assert!(!seen[h as usize], "duplicate index {h}");
                    seen[h as usize] = true;
                    assert_eq!(hilbert_cell(h, bits), (ix, iy, iz));
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_indices_are_face_neighbors() {
        // The defining Hilbert property: each step of the curve moves to
        // an adjacent cell (Manhattan distance exactly 1).
        let bits = 4;
        let n = 1u64 << bits;
        let total = n * n * n;
        let mut prev = hilbert_cell(0, bits);
        for h in 1..total {
            let cur = hilbert_cell(h, bits);
            let d = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1) + prev.2.abs_diff(cur.2);
            assert_eq!(d, 1, "step {h}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn full_resolution_roundtrip() {
        let bits = HILBERT_BITS_PER_DIM;
        for (ix, iy, iz) in [
            (0u64, 0, 0),
            (1, 2, 3),
            (123_456, 654_321, 999_999),
            ((1 << 21) - 1, (1 << 21) - 1, (1 << 21) - 1),
        ] {
            let h = hilbert_index(ix, iy, iz, bits);
            assert!(h < 1u64 << 63);
            assert_eq!(hilbert_cell(h, bits), (ix, iy, iz));
        }
    }

    #[test]
    fn hilbert_slices_have_smaller_surface_than_morton() {
        // The metric decomposition cares about: cut the curve into K
        // equal-count contiguous slices ("partitions") and count the
        // spatially adjacent cell pairs that land in different slices —
        // the partition surface driving cross-rank communication.
        // Hilbert's unbroken path yields more compact slices.
        let bits = 5;
        let n = 1u64 << bits;
        let k = 13u64; // partitions (not a power of two: misaligned with octants)
        let cells_per_part = (n * n * n) / k;
        let part_of = |idx: u64| (idx / cells_per_part).min(k - 1);
        let mut hilbert_cross = 0u64;
        let mut morton_cross = 0u64;
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    for (dx, dy, dz) in [(1u64, 0u64, 0u64), (0, 1, 0), (0, 0, 1)] {
                        let (jx, jy, jz) = (ix + dx, iy + dy, iz + dz);
                        if jx >= n || jy >= n || jz >= n {
                            continue;
                        }
                        let h_a = part_of(hilbert_index(ix, iy, iz, bits));
                        let h_b = part_of(hilbert_index(jx, jy, jz, bits));
                        if h_a != h_b {
                            hilbert_cross += 1;
                        }
                        let m_a = part_of(crate::morton::interleave(ix, iy, iz));
                        let m_b = part_of(crate::morton::interleave(jx, jy, jz));
                        if m_a != m_b {
                            morton_cross += 1;
                        }
                    }
                }
            }
        }
        assert!(
            hilbert_cross < morton_cross,
            "hilbert surface {hilbert_cross} must beat morton {morton_cross}"
        );
    }

    #[test]
    fn clamps_out_of_box_points() {
        let u = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(hilbert_key(Vec3::splat(5.0), &u), hilbert_key(Vec3::splat(1.0), &u));
    }
}
