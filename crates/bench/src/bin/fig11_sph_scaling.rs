//! Figure 11: ParaTreeT vs Gadget-2, smoothed-particle hydrodynamics.
//!
//! "Comparison of Gadget2's and ParaTreeT's average iteration times for
//! smoothed particle hydrodynamics with octrees... on Stampede2's SKX
//! nodes for a cosmological volume of 33 million particles. ParaTreeT
//! yields a ~10x speedup from 48 to 3072 cores... ParaTreeT achieves
//! most of this speedup by fetching a fixed number of neighbors using
//! the k-nearest neighbors algorithm, as opposed to Gadget-2's more
//! parallelizable but less efficient algorithm of converging on a
//! smoothing length... by doing a number of fixed-ball searches."
//!
//! ParaTreeT runs one up-and-down kNN traversal per iteration on the
//! SMP machine model. The Gadget-2 model replays, pass by pass, the
//! *measured* bisection ball searches (radii recorded by the real
//! shared-memory implementation in `paratreet-baselines`) on a pure-MPI
//! machine: one single-worker rank per core, per-rank caches only.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin fig11_sph_scaling -- \
//!     --particles 20000 --max-nodes 16
//! ```

use paratreet_apps::knn::KnnVisitor;
use paratreet_baselines::gadget::{gadget_density, BallSearchVisitor};
use paratreet_bench::{fmt_seconds, harness_telemetry, write_telemetry_outputs, Args};
use paratreet_core::{CacheModel, Configuration, DistributedEngine, Framework, TraversalKind};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 15_000);
    let seed = args.get_u64("seed", 11);
    let k = args.get_usize("k", 32);
    let max_nodes = args.get_usize("max-nodes", 16);

    let particles = gen::perturbed_lattice(n, seed, 0.5, 0.05);
    let config = Configuration { bucket_size: 16, ..Default::default() };

    // Run the real Gadget-2 bisection once (shared memory) to learn how
    // many ball passes it needs and at which radii.
    let mut fw = Framework::new(config.clone(), particles.clone());
    let gadget_stats = gadget_density(&mut fw, k, 0.2, 12);
    let pass_radii = if gadget_stats.pass_radii.is_empty() {
        vec![0.1]
    } else {
        gadget_stats.pass_radii.clone()
    };

    println!("Figure 11: average SPH iteration time, {n} gas particles, k = {k}");
    println!("(Stampede2 model; Gadget-2's bisection used {} ball passes)\n", pass_radii.len());
    println!(
        "{:>7} {:>7} {:>12} {:>12} {:>8}",
        "nodes", "cores", "ParaTreeT", "Gadget2", "speedup"
    );
    println!("{}", "-".repeat(52));

    let knn = KnnVisitor { k };

    let telemetry = harness_telemetry(&args, true);
    let mut last_metrics = None;
    let mut nodes = 1;
    while nodes <= max_nodes {
        // ParaTreeT: one up-and-down kNN traversal on SMP nodes.
        let _ = telemetry.drain(); // keep only the final ParaTreeT run
        let ptt = DistributedEngine::new(
            MachineSpec::stampede2(nodes),
            config.clone(),
            CacheModel::WaitFree,
            TraversalKind::UpAndDown,
            &knn,
        )
        .with_telemetry(telemetry.clone())
        .run_iteration(particles.clone());

        // Gadget-2: pure MPI — one rank per core, single worker. Each
        // bisection pass is replayed at its measured radius; setup
        // (decompose + build) is paid once.
        let mut gadget_total = 0.0;
        let mut setup = 0.0;
        for (i, &radius) in pass_radii.iter().enumerate() {
            let mut gadget_machine = MachineSpec::stampede2(nodes * 48);
            gadget_machine.workers_per_rank = 1;
            gadget_machine.name = "Stampede2-MPI".into();
            let ball = BallSearchVisitor { radius };
            let g = DistributedEngine::new(
                gadget_machine,
                config.clone(),
                CacheModel::PerThread,
                TraversalKind::TopDown,
                &ball,
            )
            .run_iteration(particles.clone());
            if i == 0 {
                setup = g.traversal_start;
            }
            gadget_total += g.makespan - g.traversal_start;
        }
        let g_total = setup + gadget_total;

        println!(
            "{:>7} {:>7} {:>12} {:>12} {:>7.2}x",
            nodes,
            nodes * 48,
            fmt_seconds(ptt.makespan),
            fmt_seconds(g_total),
            g_total / ptt.makespan
        );
        last_metrics = Some(ptt.metrics);
        nodes *= 2;
    }
    write_telemetry_outputs(&args, &telemetry, last_metrics.as_ref());
    println!();
    println!("paper shape: ParaTreeT several times faster across the sweep, the gap");
    println!(
        "growing with scale; mechanisms: one kNN pass vs {} ball passes, and",
        pass_radii.len()
    );
    println!("pure-MPI ranks duplicating remote fetches 48x per node.");
}
