//! The metrics registry: named counters and gauges with JSON/CSV dumps.
//!
//! Engines accumulate into a registry during a run and reports carry it
//! out, so harnesses query metrics by name instead of hand-plumbing one
//! struct field per statistic. Stats structs (cache, comm, faults,
//! traversal counts) implement [`MetricSource`] to register themselves
//! under a prefix.

use crate::json::Json;
use std::collections::BTreeMap;

/// A single metric value: integer counters or float gauges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// A monotonic count.
    U64(u64),
    /// A measured quantity (seconds, fractions).
    F64(f64),
}

impl MetricValue {
    /// The value as a float (counters widen losslessly up to 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            MetricValue::U64(u) => u as f64,
            MetricValue::F64(f) => f,
        }
    }

    fn to_json(self) -> Json {
        match self {
            MetricValue::U64(u) => Json::U64(u),
            MetricValue::F64(f) => Json::F64(f),
        }
    }
}

/// Named metrics, sorted by name (deterministic iteration and output).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    values: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Sets a counter to an absolute value.
    pub fn set_u64(&mut self, name: impl Into<String>, value: u64) {
        self.values.insert(name.into(), MetricValue::U64(value));
    }

    /// Sets a gauge.
    pub fn set_f64(&mut self, name: impl Into<String>, value: f64) {
        self.values.insert(name.into(), MetricValue::F64(value));
    }

    /// Sets a boolean flag as a 0/1 counter (there is no dedicated
    /// bool value type — dumps stay flat numeric).
    pub fn set_bool(&mut self, name: impl Into<String>, value: bool) {
        self.set_u64(name, value as u64);
    }

    /// Adds to a counter, creating it at zero.
    pub fn add_u64(&mut self, name: &str, delta: u64) {
        match self.values.get_mut(name) {
            Some(MetricValue::U64(u)) => *u += delta,
            Some(MetricValue::F64(f)) => *f += delta as f64,
            None => {
                self.values.insert(name.to_string(), MetricValue::U64(delta));
            }
        }
    }

    /// Reads a counter (0 when absent).
    pub fn get_u64(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::U64(u)) => *u,
            Some(MetricValue::F64(f)) => *f as u64,
            None => 0,
        }
    }

    /// Reads a gauge (0.0 when absent).
    pub fn get_f64(&self, name: &str) -> f64 {
        self.values.get(name).map(|v| v.as_f64()).unwrap_or(0.0)
    }

    /// Whether a metric exists.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// All metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Absorbs a stats struct under `prefix` (e.g. `"cache"`).
    pub fn absorb(&mut self, prefix: &str, source: &impl MetricSource) {
        source.register_metrics(prefix, self);
    }

    /// Merges another registry: counters add, gauges overwrite.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in other.iter() {
            match value {
                MetricValue::U64(u) => self.add_u64(name, u),
                MetricValue::F64(f) => self.set_f64(name, f),
            }
        }
    }

    /// One flat JSON object, keys sorted.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (name, value) in self.iter() {
            obj.push(name, value.to_json());
        }
        obj
    }

    /// `metric,value` CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (name, value) in self.iter() {
            match value {
                MetricValue::U64(u) => out.push_str(&format!("{name},{u}\n")),
                MetricValue::F64(f) => out.push_str(&format!("{name},{f}\n")),
            }
        }
        out
    }
}

/// Implemented by stats structs so they can be absorbed into a registry
/// under a caller-chosen prefix (`prefix.field` naming).
pub trait MetricSource {
    /// Registers every field as `{prefix}.{field}`.
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo {
        hits: u64,
    }
    impl MetricSource for Demo {
        fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
            registry.set_u64(format!("{prefix}.hits"), self.hits);
        }
    }

    #[test]
    fn set_add_get() {
        let mut r = MetricsRegistry::new();
        r.add_u64("a", 2);
        r.add_u64("a", 3);
        r.set_f64("b", 0.5);
        assert_eq!(r.get_u64("a"), 5);
        assert_eq!(r.get_f64("b"), 0.5);
        assert_eq!(r.get_u64("missing"), 0);
    }

    #[test]
    fn absorb_and_dump() {
        let mut r = MetricsRegistry::new();
        r.absorb("cache", &Demo { hits: 9 });
        r.set_f64("time.total_s", 1.25);
        assert_eq!(r.to_json().to_string(), r#"{"cache.hits":9,"time.total_s":1.25}"#);
        assert_eq!(r.to_csv(), "metric,value\ncache.hits,9\ntime.total_s,1.25\n");
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = MetricsRegistry::new();
        a.set_u64("n", 1);
        let mut b = MetricsRegistry::new();
        b.set_u64("n", 2);
        b.set_f64("g", 3.0);
        a.merge(&b);
        assert_eq!(a.get_u64("n"), 3);
        assert_eq!(a.get_f64("g"), 3.0);
    }
}
