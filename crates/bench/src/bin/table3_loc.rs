//! Table III: line counts of user code in the gravity application.
//!
//! The paper's productivity claim: the whole Barnes-Hut application is
//! 135 lines of user code (50 for `CentroidData`, 45 for
//! `GravityVisitor`, 40 for the driver) against ~4,500 lines of
//! Barnes-Hut-specific code in ChaNGa. This harness counts the
//! equivalent Rust: the non-blank, non-comment, non-test lines of the
//! gravity module split by the same three roles, plus each example.
//!
//! ```text
//! cargo run -p paratreet-bench --bin table3_loc
//! ```

use std::path::Path;

/// Counts non-blank, non-comment lines of the given source text between
/// optional `start`/`end` markers (section headers in the file).
fn count_lines(text: &str) -> usize {
    let mut in_tests = false;
    text.lines()
        .filter(|l| {
            let t = l.trim();
            if t.starts_with("#[cfg(test)]") {
                in_tests = true;
            }
            !in_tests && !t.is_empty() && !t.starts_with("//")
        })
        .count()
}

/// Extracts the lines of `text` belonging to the item whose declaration
/// contains `marker` (struct/impl blocks located by brace matching).
fn section(text: &str, markers: &[&str]) -> String {
    let mut out = String::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        if markers.iter().any(|m| lines[i].contains(m)) {
            let mut depth = 0i32;
            let mut started = false;
            while i < lines.len() {
                out.push_str(lines[i]);
                out.push('\n');
                depth += lines[i].matches('{').count() as i32;
                depth -= lines[i].matches('}').count() as i32;
                if lines[i].contains('{') {
                    started = true;
                }
                i += 1;
                if started && depth <= 0 {
                    break;
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let gravity =
        std::fs::read_to_string(root.join("crates/apps/src/gravity.rs")).expect("gravity source");

    let data_lines = count_lines(&section(
        &gravity,
        &["struct CentroidData", "impl CentroidData", "impl Data for CentroidData"],
    ));
    let visitor_lines = count_lines(&section(
        &gravity,
        &[
            "struct GravityVisitor",
            "impl Default for GravityVisitor",
            "impl Visitor for GravityVisitor",
        ],
    ));
    let kernel_lines =
        count_lines(&section(&gravity, &["pub fn grav_exact", "pub fn grav_approx"]));

    println!("TABLE III: line counts of user code in the gravity application\n");
    println!("{:<34} {:>10}  Paper equivalent", "Role (this repo)", "Lines");
    println!("{}", "-".repeat(78));
    println!("{:<34} {data_lines:>10}  CentroidData.h: 50 lines", "CentroidData (Data impl)");
    println!(
        "{:<34} {visitor_lines:>10}  GravityVisitor.h: 45 lines",
        "GravityVisitor (Visitor impl)"
    );
    println!(
        "{:<34} {kernel_lines:>10}  (counted in the 135 total)",
        "Numeric kernels (gravExact/Approx)"
    );

    // Driver: the quickstart example is the paper's GravityMain.
    let mut example_total = 0;
    for (file, role) in [
        ("examples/quickstart.rs", "GravityMain.C: 40 lines"),
        ("examples/gravity_cosmology.rs", "(full simulation loop)"),
        ("examples/sph_blob.rs", "(SPH app, paper: 250 lines)"),
        ("examples/planetesimal_disk.rs", "(case-study app)"),
        ("examples/knn_search.rs", "(kNN app)"),
    ] {
        if let Ok(text) = std::fs::read_to_string(root.join(file)) {
            let lines = count_lines(&text);
            example_total += lines;
            println!("{file:<34} {lines:>10}  {role}");
        }
    }

    let user_total = data_lines + visitor_lines + kernel_lines;
    println!("{}", "-".repeat(78));
    println!("{:<34} {user_total:>10}  paper: 135 lines", "gravity app total (excl. examples)");
    println!("{:<34} {example_total:>10}", "all example drivers");
    println!();
    println!("For comparison, ChaNGa's Barnes-Hut-specific code is ~4,500 lines;");
    println!("this repo's whole framework (not user code) is what absorbs that.");
}
