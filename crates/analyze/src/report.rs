//! Assembly: run every analysis, render the report, emit deterministic
//! JSON, and evaluate the `--check` assertions.

use crate::critical::{critical_path, CriticalPath};
use crate::profile::{grain_sizes, utilization, GrainRow, Utilization};
use crate::requests::{request_chains, resolve_exemplar, RequestChain};
use crate::trace::TraceData;
use paratreet_telemetry::Json;
use std::fmt::Write as _;

/// The query classes the service exports latency histograms for.
const CLASSES: [&str; 4] = ["knn", "ball", "range", "ray"];

/// One query class's latency breakdown, read from the metrics dump.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyRow {
    /// Class label (`knn`/`ball`/`range`/`ray`).
    pub class: String,
    /// Requests recorded.
    pub count: u64,
    /// Mean end-to-end latency (ns).
    pub mean_ns: f64,
    /// p999 end-to-end latency (ns).
    pub p999_ns: u64,
    /// Mean time from submit to worker pop (ns).
    pub queue_wait_mean_ns: f64,
    /// Mean time from pop to snapshot pin (ns).
    pub pin_wait_mean_ns: f64,
    /// Mean kernel execution time (ns).
    pub exec_mean_ns: f64,
    /// Requests answered `DeadlineExceeded` after expiring in queue
    /// (0 when the dump predates the overload counters or the run was
    /// clean).
    pub deadline_exceeded: u64,
    /// Requests answered at a reduced fidelity level (0 likewise).
    pub degraded: u64,
}

/// A resolved p999 exemplar: the class, its chain, and completeness.
#[derive(Clone, Debug, PartialEq)]
pub struct ExemplarRow {
    /// Class label.
    pub class: String,
    /// The resolved chain.
    pub chain: RequestChain,
    /// True when all five stage spans are present.
    pub complete: bool,
}

/// Per-column summary of a flight-recorder series.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStat {
    /// Column name.
    pub name: String,
    /// Minimum sampled value.
    pub min: f64,
    /// Maximum sampled value.
    pub max: f64,
    /// Mean sampled value.
    pub mean: f64,
    /// Final sampled value.
    pub last: f64,
}

/// Summary of an ingested flight-recorder time series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesSummary {
    /// Clock domain label.
    pub clock: String,
    /// Rows in the window.
    pub n_samples: usize,
    /// First sample timestamp (µs).
    pub t0_us: f64,
    /// Last sample timestamp (µs).
    pub t1_us: f64,
    /// One summary per column.
    pub columns: Vec<ColumnStat>,
}

/// Everything the analyzer computed for one set of artifacts.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// The parsed trace, when one was given.
    pub trace: Option<TraceData>,
    /// Per-track utilization (requires a trace).
    pub utilization: Option<Utilization>,
    /// Critical path (requires a trace).
    pub critical: Option<CriticalPath>,
    /// Grain-size rows (requires a trace).
    pub grains: Vec<GrainRow>,
    /// Re-assembled request chains (requires a trace with links).
    pub chains: Vec<RequestChain>,
    /// Resolved p999 exemplars (requires trace + metrics).
    pub exemplars: Vec<ExemplarRow>,
    /// Per-class latency breakdown (requires metrics).
    pub latency: Vec<LatencyRow>,
    /// Flight-recorder summary, when a series was given.
    pub series: Option<SeriesSummary>,
}

fn summarize_series(doc: &Json) -> Result<SeriesSummary, String> {
    let clock = match doc.get("clock") {
        Some(Json::Str(s)) => s.clone(),
        _ => return Err("timeseries: missing clock".into()),
    };
    let names: Vec<String> = doc
        .get("series")
        .and_then(Json::as_arr)
        .ok_or("timeseries: missing series names")?
        .iter()
        .map(|n| match n {
            Json::Str(s) => Ok(s.clone()),
            _ => Err("timeseries: non-string series name".to_string()),
        })
        .collect::<Result<_, _>>()?;
    let samples = doc.get("samples").and_then(Json::as_arr).ok_or("timeseries: missing samples")?;
    let mut t0 = f64::INFINITY;
    let mut t1 = f64::NEG_INFINITY;
    let mut cols: Vec<(f64, f64, f64, f64)> =
        names.iter().map(|_| (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0.0)).collect();
    for row in samples {
        let row = row.as_arr().ok_or("timeseries: non-array sample")?;
        let t = row.first().and_then(Json::as_f64).ok_or("timeseries: sample without t")?;
        t0 = t0.min(t);
        t1 = t1.max(t);
        for (c, stat) in cols.iter_mut().enumerate() {
            let v = row.get(c + 1).and_then(Json::as_f64).unwrap_or(0.0);
            stat.0 = stat.0.min(v);
            stat.1 = stat.1.max(v);
            stat.2 += v;
            stat.3 = v;
        }
    }
    let n = samples.len();
    Ok(SeriesSummary {
        clock,
        n_samples: n,
        t0_us: if n > 0 { t0 } else { 0.0 },
        t1_us: if n > 0 { t1 } else { 0.0 },
        columns: names
            .into_iter()
            .zip(cols)
            .map(|(name, (min, max, sum, last))| ColumnStat {
                name,
                min: if n > 0 { min } else { 0.0 },
                max: if n > 0 { max } else { 0.0 },
                mean: if n > 0 { sum / n as f64 } else { 0.0 },
                last,
            })
            .collect(),
    })
}

fn latency_rows(metrics: &Json) -> Vec<LatencyRow> {
    let f = |key: String| metrics.get(&key).and_then(Json::as_f64);
    CLASSES
        .iter()
        .filter_map(|class| {
            let count = f(format!("serve.latency.{class}.count"))?;
            Some(LatencyRow {
                class: class.to_string(),
                count: count as u64,
                mean_ns: f(format!("serve.latency.{class}.mean")).unwrap_or(0.0),
                p999_ns: f(format!("serve.latency.{class}.p999")).unwrap_or(0.0) as u64,
                queue_wait_mean_ns: f(format!("serve.latency.{class}.queue_wait.mean"))
                    .unwrap_or(0.0),
                pin_wait_mean_ns: f(format!("serve.latency.{class}.pin_wait.mean")).unwrap_or(0.0),
                exec_mean_ns: f(format!("serve.latency.{class}.exec.mean")).unwrap_or(0.0),
                // Overload counters are absent in pre-ISSUE-9 dumps and
                // zero on clean runs; both read as 0 so `--check` and
                // old artifacts keep working.
                deadline_exceeded: f(format!("serve.latency.{class}.deadline_exceeded"))
                    .unwrap_or(0.0) as u64,
                degraded: f(format!("serve.latency.{class}.degraded")).unwrap_or(0.0) as u64,
            })
        })
        .collect()
}

/// Runs every applicable analysis over the given artifacts.
pub fn analyze(
    trace: Option<TraceData>,
    metrics: Option<&Json>,
    series: Option<&Json>,
    bins: usize,
) -> Result<Analysis, String> {
    let mut out = Analysis::default();
    if let Some(trace) = trace {
        out.utilization = Some(utilization(&trace, bins));
        out.critical = Some(critical_path(&trace));
        out.grains = grain_sizes(&trace);
        out.chains = request_chains(&trace);
        if let Some(metrics) = metrics {
            for class in CLASSES {
                if let Some(chain) = resolve_exemplar(&trace, metrics, class) {
                    let complete = chain.is_complete(&trace);
                    out.exemplars.push(ExemplarRow { class: class.to_string(), chain, complete });
                }
            }
        }
        out.trace = Some(trace);
    }
    if let Some(metrics) = metrics {
        out.latency = latency_rows(metrics);
    }
    if let Some(series) = series {
        out.series = Some(summarize_series(series)?);
    }
    Ok(out)
}

impl Analysis {
    /// Number of request chains carrying all five stages.
    pub fn n_complete_chains(&self) -> usize {
        match &self.trace {
            Some(t) => self.chains.iter().filter(|c| c.is_complete(t)).count(),
            None => 0,
        }
    }

    /// The deterministic JSON form: same artifacts in, same bytes out.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        if let Some(trace) = &self.trace {
            let mut t = Json::obj();
            t.push("clock", Json::Str(trace.clock.clone()));
            t.push("n_spans", Json::U64(trace.spans.len() as u64));
            t.push("n_tracks", Json::U64(trace.tracks().len() as u64));
            let (lo, hi) = trace.extent_us().unwrap_or((0.0, 0.0));
            t.push("extent_us", Json::Arr(vec![Json::F64(lo), Json::F64(hi)]));
            doc.push("trace", t);
        }
        if let Some(util) = &self.utilization {
            let mut u = Json::obj();
            u.push("t0_us", Json::F64(util.t0_us));
            u.push("t1_us", Json::F64(util.t1_us));
            let rows = util
                .tracks
                .iter()
                .map(|tp| {
                    let mut row = Json::obj();
                    row.push("rank", Json::U64(tp.rank));
                    row.push("worker", Json::U64(tp.worker));
                    row.push("n_spans", Json::U64(tp.n_spans as u64));
                    row.push("busy_us", Json::F64(tp.busy_us));
                    row.push("busy_frac", Json::F64(tp.busy_frac));
                    row.push("bins", Json::Arr(tp.bins.iter().map(|&b| Json::F64(b)).collect()));
                    row
                })
                .collect();
            u.push("tracks", Json::Arr(rows));
            doc.push("utilization", u);
        }
        if let (Some(cp), Some(trace)) = (&self.critical, &self.trace) {
            let mut c = Json::obj();
            c.push("work_us", Json::F64(cp.work_us));
            c.push("extent_us", Json::F64(cp.extent_us));
            c.push("gap_us", Json::F64(cp.gap_us));
            c.push("n_steps", Json::U64(cp.steps.len() as u64));
            let steps = cp
                .steps
                .iter()
                .map(|&i| {
                    let s = &trace.spans[i];
                    let mut step = Json::obj();
                    step.push("name", Json::Str(s.name.clone()));
                    step.push("start_us", Json::F64(s.start_us));
                    step.push("dur_us", Json::F64(s.dur_us));
                    step.push("rank", Json::U64(s.rank));
                    step.push("worker", Json::U64(s.worker));
                    step
                })
                .collect();
            c.push("steps", Json::Arr(steps));
            let by_name = cp
                .by_name
                .iter()
                .map(|(n, us)| Json::Arr(vec![Json::Str(n.clone()), Json::F64(*us)]))
                .collect();
            c.push("by_name", Json::Arr(by_name));
            doc.push("critical_path", c);
        }
        if !self.grains.is_empty() {
            let rows = self
                .grains
                .iter()
                .map(|g| {
                    let mut row = Json::obj();
                    row.push("name", Json::Str(g.name.clone()));
                    row.push("count", Json::U64(g.count as u64));
                    row.push("total_us", Json::F64(g.total_us));
                    row.push("mean_us", Json::F64(g.mean_us));
                    row.push("p50_us", Json::F64(g.p50_us));
                    row.push("p99_us", Json::F64(g.p99_us));
                    row.push("max_us", Json::F64(g.max_us));
                    row
                })
                .collect();
            doc.push("grains", Json::Arr(rows));
        }
        if self.trace.is_some() {
            let mut r = Json::obj();
            r.push("n_chains", Json::U64(self.chains.len() as u64));
            r.push("n_complete", Json::U64(self.n_complete_chains() as u64));
            doc.push("requests", r);
        }
        if let Some(trace) = &self.trace {
            let rows = self
                .exemplars
                .iter()
                .map(|ex| {
                    let mut row = Json::obj();
                    row.push("class", Json::Str(ex.class.clone()));
                    row.push("request", Json::U64(ex.chain.request));
                    row.push("complete", Json::Bool(ex.complete));
                    row.push("total_us", Json::F64(ex.chain.total_us(trace)));
                    let stages = ex
                        .chain
                        .stages
                        .iter()
                        .map(|&i| {
                            let s = &trace.spans[i];
                            let mut stage = Json::obj();
                            stage.push("name", Json::Str(s.name.clone()));
                            stage.push("dur_us", Json::F64(s.dur_us));
                            stage
                        })
                        .collect();
                    row.push("stages", Json::Arr(stages));
                    row
                })
                .collect();
            if !self.exemplars.is_empty() {
                doc.push("exemplars", Json::Arr(rows));
            }
        }
        if !self.latency.is_empty() {
            let rows = self
                .latency
                .iter()
                .map(|l| {
                    let mut row = Json::obj();
                    row.push("class", Json::Str(l.class.clone()));
                    row.push("count", Json::U64(l.count));
                    row.push("mean_ns", Json::F64(l.mean_ns));
                    row.push("p999_ns", Json::U64(l.p999_ns));
                    row.push("queue_wait_mean_ns", Json::F64(l.queue_wait_mean_ns));
                    row.push("pin_wait_mean_ns", Json::F64(l.pin_wait_mean_ns));
                    row.push("exec_mean_ns", Json::F64(l.exec_mean_ns));
                    row.push("deadline_exceeded", Json::U64(l.deadline_exceeded));
                    row.push("degraded", Json::U64(l.degraded));
                    row
                })
                .collect();
            doc.push("latency", Json::Arr(rows));
        }
        if let Some(series) = &self.series {
            let mut s = Json::obj();
            s.push("clock", Json::Str(series.clock.clone()));
            s.push("n_samples", Json::U64(series.n_samples as u64));
            s.push("t0_us", Json::F64(series.t0_us));
            s.push("t1_us", Json::F64(series.t1_us));
            let cols = series
                .columns
                .iter()
                .map(|c| {
                    let mut col = Json::obj();
                    col.push("name", Json::Str(c.name.clone()));
                    col.push("min", Json::F64(c.min));
                    col.push("max", Json::F64(c.max));
                    col.push("mean", Json::F64(c.mean));
                    col.push("last", Json::F64(c.last));
                    col
                })
                .collect();
            s.push("columns", Json::Arr(cols));
            doc.push("timeseries", s);
        }
        doc
    }

    /// The human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "paratreet-analyze report");
        let _ = writeln!(out, "========================");
        if let Some(trace) = &self.trace {
            let (lo, hi) = trace.extent_us().unwrap_or((0.0, 0.0));
            let _ = writeln!(
                out,
                "\ntrace: {} spans on {} tracks, {:.1} us extent ({} clock)",
                trace.spans.len(),
                trace.tracks().len(),
                hi - lo,
                trace.clock
            );
        }
        if let Some(util) = &self.utilization {
            let _ = writeln!(out, "\nutilization (busy fraction per track)");
            for tp in &util.tracks {
                let sparkline: String = tp
                    .bins
                    .iter()
                    .map(|&b| {
                        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
                        glyphs[((b * 7.0).round() as usize).min(7)]
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "  rank {} worker {}: {:5.1}% busy, {} spans |{}|",
                    tp.rank,
                    tp.worker,
                    tp.busy_frac * 100.0,
                    tp.n_spans,
                    sparkline
                );
            }
        }
        if let Some(cp) = &self.critical {
            let _ = writeln!(
                out,
                "\ncritical path: {} steps, {:.1} us work + {:.1} us gaps over {:.1} us",
                cp.steps.len(),
                cp.work_us,
                cp.gap_us,
                cp.extent_us
            );
            for (name, us) in &cp.by_name {
                let pct = if cp.work_us > 0.0 { 100.0 * us / cp.work_us } else { 0.0 };
                let _ = writeln!(out, "  {name:<24} {us:>12.1} us  {pct:5.1}%");
            }
        }
        if !self.grains.is_empty() {
            let _ = writeln!(out, "\ngrain sizes (us): name, count, mean, p50, p99, max");
            for g in self.grains.iter().take(12) {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>7} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                    g.name, g.count, g.mean_us, g.p50_us, g.p99_us, g.max_us
                );
            }
        }
        if self.trace.is_some() && !self.chains.is_empty() {
            let _ = writeln!(
                out,
                "\nrequests: {} traced chains, {} complete",
                self.chains.len(),
                self.n_complete_chains()
            );
        }
        if let Some(trace) = &self.trace {
            for ex in &self.exemplars {
                let _ = writeln!(
                    out,
                    "\np999 exemplar [{}]: request {:#x}, {:.1} us total{}",
                    ex.class,
                    ex.chain.request,
                    ex.chain.total_us(trace),
                    if ex.complete { "" } else { " (INCOMPLETE CHAIN)" }
                );
                for &i in &ex.chain.stages {
                    let s = &trace.spans[i];
                    let _ = writeln!(out, "    {:<12} {:>12.1} us", s.name, s.dur_us);
                }
            }
        }
        if !self.latency.is_empty() {
            let _ = writeln!(
                out,
                "\nlatency (ns): class, count, mean, p999, queue_wait, pin_wait, exec, \
                 deadline_exceeded, degraded"
            );
            for l in &self.latency {
                let _ = writeln!(
                    out,
                    "  {:<6} {:>8} {:>12.0} {:>12} {:>12.0} {:>12.0} {:>12.0} {:>8} {:>8}",
                    l.class,
                    l.count,
                    l.mean_ns,
                    l.p999_ns,
                    l.queue_wait_mean_ns,
                    l.pin_wait_mean_ns,
                    l.exec_mean_ns,
                    l.deadline_exceeded,
                    l.degraded
                );
            }
        }
        if let Some(series) = &self.series {
            let _ = writeln!(
                out,
                "\nflight recorder: {} samples over {:.1} us ({} clock)",
                series.n_samples,
                series.t1_us - series.t0_us,
                series.clock
            );
            for c in &series.columns {
                let _ = writeln!(
                    out,
                    "  {:<18} min {:>12.2}  max {:>12.2}  mean {:>12.2}  last {:>12.2}",
                    c.name, c.min, c.max, c.mean, c.last
                );
            }
        }
        out
    }

    /// The `--check` assertions, in CI-friendly form: an error message
    /// describing the first failed invariant, or `Ok`.
    pub fn check(&self) -> Result<(), String> {
        let trace = self.trace.as_ref().ok_or("check: no trace was ingested")?;
        let cp = self.critical.as_ref().ok_or("check: no critical path")?;
        if cp.work_us.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("check: critical path has zero work".into());
        }
        let util = self.utilization.as_ref().ok_or("check: no utilization profile")?;
        if util.tracks.is_empty() {
            return Err("check: no worker tracks in the trace".into());
        }
        for (rank, worker) in trace.tracks() {
            let row = util
                .tracks
                .iter()
                .find(|tp| tp.rank == rank && tp.worker == worker)
                .ok_or(format!("check: no utilization row for rank {rank} worker {worker}"))?;
            if row.busy_us.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(format!(
                    "check: rank {rank} worker {worker} has a zero-busy utilization row"
                ));
            }
        }
        // Serve artifacts: when the metrics dump carries latency
        // histograms with traffic, at least one class's p999 exemplar
        // must resolve to a complete stage chain in the trace.
        let served: Vec<&LatencyRow> = self.latency.iter().filter(|l| l.count > 0).collect();
        if !served.is_empty() && !self.exemplars.iter().any(|ex| ex.complete) {
            return Err(
                "check: latency histograms carry traffic but no p999 exemplar resolves to a \
                 complete request chain"
                    .into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_telemetry::json::parse;

    #[test]
    fn series_summary_reads_the_recorder_export() {
        let doc =
            parse(r#"{"clock":"virtual","series":["a","b"],"samples":[[1,2,3],[2,4,1]]}"#).unwrap();
        let s = summarize_series(&doc).unwrap();
        assert_eq!(s.clock, "virtual");
        assert_eq!(s.n_samples, 2);
        assert_eq!((s.t0_us, s.t1_us), (1.0, 2.0));
        assert_eq!(s.columns[0].min, 2.0);
        assert_eq!(s.columns[0].max, 4.0);
        assert_eq!(s.columns[0].mean, 3.0);
        assert_eq!(s.columns[1].last, 1.0);
    }

    #[test]
    fn analysis_json_is_deterministic_and_check_gates() {
        let trace_json = paratreet_telemetry::chrome_trace_json(&{
            use paratreet_telemetry::{Span, SpanLink, Trace, Track};
            let mut t = Trace::default();
            t.spans.push(Span {
                name: "tree build",
                start_us: 0.0,
                dur_us: 10.0,
                track: Track { rank: 0, worker: 0 },
                key: None,
                link: SpanLink::NONE,
            });
            t
        });
        let a = analyze(Some(crate::parse_trace(&trace_json).unwrap()), None, None, 4).unwrap();
        let b = analyze(Some(crate::parse_trace(&trace_json).unwrap()), None, None, 4).unwrap();
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert!(a.check().is_ok(), "{:?}", a.check());
        assert!(a.render().contains("critical path"));

        let empty = analyze(None, None, None, 4).unwrap();
        assert!(empty.check().is_err(), "check requires a trace");
    }

    #[test]
    fn check_tolerates_forest_and_ghost_metric_keys() {
        // Forest runs export `forest.*` / `ghost.*` / `fof.*` families that
        // predate-this-crate dumps never carried; `--check` must treat them
        // as inert extras, not schema violations.
        let trace_json = paratreet_telemetry::chrome_trace_json(&{
            use paratreet_telemetry::{Span, SpanLink, Trace, Track};
            let mut t = Trace::default();
            t.spans.push(Span {
                name: "ghost exchange",
                start_us: 0.0,
                dur_us: 5.0,
                track: Track { rank: 0, worker: 0 },
                key: None,
                link: SpanLink::NONE,
            });
            t
        });
        let metrics = parse(
            r#"{"forest.boxes":4,"forest.routes":104,"forest.owned":8000,
                "forest.seam_splits":0,"ghost.zones":22,"ghost.particles":51,
                "ghost.bytes":7752,"ghost.des.comm.bytes":3040,
                "ghost.des.makespan_s":2.1e-6,"fof.halos":26,"fof.grouped":3237,
                "fof.links":3211,"fof.largest":810}"#,
        )
        .unwrap();
        let a = analyze(Some(crate::parse_trace(&trace_json).unwrap()), Some(&metrics), None, 4)
            .unwrap();
        assert!(a.check().is_ok(), "{:?}", a.check());
        // The unknown keys carry no serve latency, so no rows materialize
        // and no exemplar is demanded.
        assert!(a.latency.is_empty());
        assert!(a.exemplars.is_empty());
    }
}
