//! Incremental tree maintenance: patch a built Subtree across iterations
//! instead of rebuilding it from scratch.
//!
//! ParaTreeT pays the full decomposition + build + leaf-sharing pipeline
//! every iteration even though particles move only slightly between
//! timesteps. An [`UpdatableTree`] is the mutable twin of a
//! [`BuiltTree`]: nodes live in a slab with a free list, leaves own
//! their buckets directly, and the update cycle is *batch-first*:
//!
//! 1. [`UpdatableTree::classify`] — one pass over the leaves in DFS
//!    order that copies the integrated particle state back in, marks a
//!    leaf *dirty* only when a position or mass actually changed, and
//!    evicts every particle that left its leaf's spatial footprint.
//!    The caller groups the escapees by destination subtree and sorts
//!    each group by entry key, forming insert batches.
//! 2. [`UpdatableTree::insert_batch`] — sieves a whole sorted batch
//!    from the subtree root down in one recursive group pass: at each
//!    interior node the split geometry is computed once and the batch
//!    is stable-partitioned across the child slots, materialising
//!    missing children with the same child-box/child-key rules the
//!    builder uses. The result is bit-identical to inserting the same
//!    particles one at a time in the same order (the per-particle
//!    [`UpdatableTree::insert`] is kept as the reference path).
//! 3. [`UpdatableTree::repair`] — one bottom-up pass that splits
//!    overfull leaves (with the builder's own split rule), collapses
//!    underfull interiors, prunes emptied regions, re-accumulates
//!    `Data` along dirty root paths only, and checks the α
//!    weight-balance criterion on refreshed interiors of median-split
//!    trees (k-d / longest-dim). Position-determined trees (octree,
//!    binary-oct) never report imbalance: their split planes are fixed
//!    by geometry, so the maintained structure already matches what a
//!    fresh build would produce and a rebuild cannot improve it.
//!
//! [`UpdatableTree::flatten`] then reproduces the exact arena layout
//! [`crate::TreeBuilder`] emits (pre-order, children in ascending slot
//! order, buckets tiling the particle array in DFS order), so a
//! maintained tree drops into the cache/traversal pipeline unchanged —
//! and a zero-motion update round-trips bit-identically.
//!
//! All structural operations return [`UpdateError`] instead of
//! panicking when the slab is inconsistent (a stale index or a shape
//! that contradicts itself), so an engine can log the error and fall
//! back to a full rebuild rather than aborting the run.

use crate::build::TreeBuilder;
use crate::node::{BuildNode, BuiltTree, NodeShape, NO_NODE};
use crate::{Data, TreeType};
use paratreet_geometry::{Axis, BoundingBox, NodeKey, Vec3};
use paratreet_particles::Particle;

/// A structural inconsistency detected while patching a maintained
/// subtree. These are recoverable: the engine logs the error and falls
/// back to a fresh build of the affected forest (mirroring the cache
/// crate's `CacheError` pattern) instead of aborting the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// A node referenced a slab index that is not live (freed or out of
    /// range) — the maintained structure can no longer be trusted.
    StaleSlab { index: u32 },
    /// A node's shape changed underneath an operation that had just
    /// observed a different shape at the same index.
    ShapeCorrupt { index: u32 },
    /// The master particle slice handed to [`UpdatableTree::classify`]
    /// does not match the subtree's population.
    PopulationMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::StaleSlab { index } => {
                write!(f, "stale slab index {index} in maintained subtree")
            }
            UpdateError::ShapeCorrupt { index } => {
                write!(f, "node {index} changed shape mid-operation")
            }
            UpdateError::PopulationMismatch { expected, got } => {
                write!(f, "master slice holds {got} particles, subtree expects {expected}")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// Counters describing one update round of a single subtree. Summed by
/// the engine layer into the `tree.update.*` metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Particles whose position or mass changed since the last sync.
    pub n_moved: u64,
    /// Particles that left their leaf's bbox and were evicted.
    pub n_escaped: u64,
    /// Particles sieved into a leaf of this subtree.
    pub n_inserted: u64,
    /// Overfull leaves split by the repair pass.
    pub n_splits: u64,
    /// Underfull interior nodes collapsed back into leaves.
    pub n_merges: u64,
    /// Emptied child regions pruned from their parents.
    pub n_pruned: u64,
    /// Nodes whose `Data` summary was re-accumulated.
    pub n_refreshed: u64,
}

impl std::ops::AddAssign for UpdateStats {
    fn add_assign(&mut self, o: UpdateStats) {
        self.n_moved += o.n_moved;
        self.n_escaped += o.n_escaped;
        self.n_inserted += o.n_inserted;
        self.n_splits += o.n_splits;
        self.n_merges += o.n_merges;
        self.n_pruned += o.n_pruned;
        self.n_refreshed += o.n_refreshed;
    }
}

/// Result of [`UpdatableTree::classify`]: the moved count plus every
/// particle that left its leaf's footprint, in DFS leaf order.
#[derive(Debug, Default, PartialEq)]
pub struct Classified {
    /// Particles whose position or mass changed since the last sync.
    pub n_moved: u64,
    /// Evicted particles the caller must re-route (into this subtree,
    /// a sibling subtree, or a full rebuild).
    pub escapees: Vec<Particle>,
}

/// Outcome of one [`UpdatableTree::repair`] pass.
#[derive(Debug, Default)]
pub struct RepairReport {
    /// Structural counters for this pass.
    pub stats: UpdateStats,
    /// Some refreshed interior node of a median-split tree violates the
    /// α weight-balance criterion — the subtree has drifted far enough
    /// from its build-time medians that a rebuild pays for itself.
    /// Always `false` for position-determined tree types.
    pub unbalanced: bool,
}

/// Structural kind of a maintained node. Unlike [`NodeShape`], leaves
/// own their bucket directly so membership edits are local.
enum UpdateShape {
    /// Interior node; `NO_NODE` marks absent children.
    Internal { children: [u32; 8] },
    /// Leaf owning its bucket.
    Leaf { particles: Vec<Particle> },
    /// A region with no particles.
    Empty,
}

/// One slab node of an [`UpdatableTree`].
struct UpdateNode<D> {
    key: NodeKey,
    bbox: BoundingBox,
    shape: UpdateShape,
    /// Depth below the subtree root (matches [`BuildNode::depth`]).
    depth: u32,
    data: D,
    n_particles: u32,
    /// Set when the bucket membership, particle state, or child set
    /// changed since the last repair; cleared by [`UpdatableTree::repair`].
    dirty: bool,
}

/// A mutable Subtree maintained across iterations. The root is always
/// slab index 0; freed slots are recycled through a free list.
pub struct UpdatableTree<D: Data> {
    tree_type: TreeType,
    bucket_size: usize,
    root_key: NodeKey,
    root_depth: u32,
    max_local_depth: u32,
    nodes: Vec<Option<UpdateNode<D>>>,
    free: Vec<u32>,
}

impl<D: Data> UpdatableTree<D> {
    /// Adopts a freshly built subtree. `root_depth` is the subtree
    /// root's depth below the global root (it drives k-d axis cycling,
    /// exactly as in [`TreeBuilder::root_depth`]).
    pub fn from_built(
        tree: &BuiltTree<D>,
        tree_type: TreeType,
        bucket_size: usize,
        root_depth: u32,
    ) -> UpdatableTree<D> {
        let bits = tree_type.bits_per_level();
        let root_key = tree.root().key;
        // The builder's arena is pre-order with children in ascending
        // slot order — exactly the slab order a DFS adoption would
        // allocate — so nodes map over index-for-index.
        let nodes = tree
            .nodes
            .iter()
            .enumerate()
            .map(|(i, src)| {
                let shape = match src.shape {
                    NodeShape::Leaf { .. } => {
                        UpdateShape::Leaf { particles: tree.bucket(i as u32).to_vec() }
                    }
                    NodeShape::Empty => UpdateShape::Empty,
                    NodeShape::Internal => UpdateShape::Internal { children: src.children },
                };
                Some(UpdateNode {
                    key: src.key,
                    bbox: src.bbox,
                    shape,
                    depth: src.depth,
                    data: src.data.clone(),
                    n_particles: src.n_particles,
                    dirty: false,
                })
            })
            .collect();
        UpdatableTree {
            tree_type,
            bucket_size,
            root_key,
            root_depth,
            // Same digit-capacity cap as the builder's `max_depth`.
            max_local_depth: (63 - root_key.level(bits) * bits) / bits,
            nodes,
            free: Vec::new(),
        }
    }

    fn alloc(&mut self, n: UpdateNode<D>) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Some(n);
                i
            }
            None => {
                self.nodes.push(Some(n));
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn release(&mut self, i: u32) {
        self.nodes[i as usize] = None;
        self.free.push(i);
    }

    /// The root slab slot is allocated first and never released, so
    /// these two accessors cannot observe a dead slot; every other
    /// index goes through [`Self::try_node`] / [`Self::try_node_mut`].
    fn root(&self) -> &UpdateNode<D> {
        self.nodes[0].as_ref().expect("subtree root is never released")
    }

    fn try_node(&self, i: u32) -> Result<&UpdateNode<D>, UpdateError> {
        self.nodes
            .get(i as usize)
            .and_then(|n| n.as_ref())
            .ok_or(UpdateError::StaleSlab { index: i })
    }

    fn try_node_mut(&mut self, i: u32) -> Result<&mut UpdateNode<D>, UpdateError> {
        self.nodes
            .get_mut(i as usize)
            .and_then(|n| n.as_mut())
            .ok_or(UpdateError::StaleSlab { index: i })
    }

    /// The subtree root's spatial footprint (the Subtree piece's region).
    pub fn root_bbox(&self) -> BoundingBox {
        self.root().bbox
    }

    /// The subtree root's path key.
    pub fn root_key(&self) -> NodeKey {
        self.root_key
    }

    /// Total particles currently held.
    pub fn n_particles(&self) -> u32 {
        self.root().n_particles
    }

    /// Live node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Maximum node depth below the subtree root.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().flatten().map(|n| n.depth).max().unwrap_or(0)
    }

    /// All particles in DFS bucket order (what [`Self::flatten`] emits).
    pub fn all_particles(&self) -> Result<Vec<Particle>, UpdateError> {
        let mut out = Vec::with_capacity(self.n_particles() as usize);
        self.collect(0, &mut out)?;
        Ok(out)
    }

    fn collect(&self, i: u32, out: &mut Vec<Particle>) -> Result<(), UpdateError> {
        match &self.try_node(i)?.shape {
            UpdateShape::Leaf { particles } => out.extend_from_slice(particles),
            UpdateShape::Internal { children } => {
                let children = *children;
                for c in children {
                    if c != NO_NODE {
                        self.collect(c, out)?;
                    }
                }
            }
            UpdateShape::Empty => {}
        }
        Ok(())
    }

    /// The batch classification pass: copies integrated particle state
    /// back into the leaves *and* evicts everything that left its
    /// leaf's bbox, in one walk over the leaves in DFS order. `master`
    /// must hold this subtree's particles in the order the last
    /// [`Self::flatten`] emitted them. Only leaves where a position or
    /// mass actually changed go dirty (and only those are scanned for
    /// escapees — clean leaves cannot have movers), so a zero-motion
    /// classify leaves every summary untouched and returns no escapees.
    pub fn classify(&mut self, master: &[Particle]) -> Result<Classified, UpdateError> {
        let expected = self.n_particles() as usize;
        if expected != master.len() {
            return Err(UpdateError::PopulationMismatch { expected, got: master.len() });
        }
        let mut out = Classified::default();
        let mut off = 0usize;
        self.classify_walk(0, master, &mut off, &mut out)?;
        if off != master.len() {
            return Err(UpdateError::PopulationMismatch { expected: off, got: master.len() });
        }
        Ok(out)
    }

    /// DFS over the leaves in bucket-tiling order, copying, comparing,
    /// and evicting in a single pass per leaf. Only a moved particle
    /// can have left its leaf's box (unmoved ones are inside by
    /// invariant), so the containment test runs only on movers.
    fn classify_walk(
        &mut self,
        i: u32,
        master: &[Particle],
        off: &mut usize,
        out: &mut Classified,
    ) -> Result<(), UpdateError> {
        let children = match &self.try_node(i)?.shape {
            UpdateShape::Internal { children } => *children,
            UpdateShape::Empty => return Ok(()),
            UpdateShape::Leaf { .. } => {
                let node = self.try_node_mut(i)?;
                let bbox = node.bbox;
                let UpdateShape::Leaf { particles } = &mut node.shape else {
                    return Err(UpdateError::ShapeCorrupt { index: i });
                };
                let len = particles.len();
                if *off + len > master.len() {
                    return Err(UpdateError::PopulationMismatch {
                        expected: *off + len,
                        got: master.len(),
                    });
                }
                let slice = &master[*off..*off + len];
                *off += len;
                let mut dirty = node.dirty;
                let mut w = 0usize;
                for (r, src) in slice.iter().enumerate() {
                    let moved = particles[r].pos != src.pos || particles[r].mass != src.mass;
                    if moved {
                        dirty = true;
                        out.n_moved += 1;
                        if !bbox.contains(src.pos) {
                            out.escapees.push(*src);
                            continue;
                        }
                    }
                    particles[w] = *src;
                    w += 1;
                }
                particles.truncate(w);
                node.dirty = dirty;
                return Ok(());
            }
        };
        for c in children {
            if c != NO_NODE {
                self.classify_walk(c, master, off, out)?;
            }
        }
        Ok(())
    }

    /// Sieves one particle from the subtree root to its leaf, creating
    /// a missing child (builder child-box/child-key rules) on the way.
    /// This is the sequential reference path; batched callers use
    /// [`Self::insert_batch`], which is bit-identical for the same
    /// insertion order.
    pub fn insert(&mut self, p: Particle) -> Result<(), UpdateError> {
        let mut i = 0u32;
        loop {
            let children = match &self.try_node(i)?.shape {
                UpdateShape::Empty => {
                    let node = self.try_node_mut(i)?;
                    node.shape = UpdateShape::Leaf { particles: vec![p] };
                    node.dirty = true;
                    return Ok(());
                }
                UpdateShape::Leaf { .. } => {
                    let node = self.try_node_mut(i)?;
                    let UpdateShape::Leaf { particles } = &mut node.shape else {
                        return Err(UpdateError::ShapeCorrupt { index: i });
                    };
                    particles.push(p);
                    node.dirty = true;
                    return Ok(());
                }
                UpdateShape::Internal { children } => *children,
            };
            let (slot, child_bbox, child_key) = self.sieve_target(i, &children, p.pos)?;
            match children[slot] {
                NO_NODE => {
                    let depth = self.try_node(i)?.depth + 1;
                    let ci = self.alloc(UpdateNode {
                        key: child_key,
                        bbox: child_bbox,
                        shape: UpdateShape::Leaf { particles: vec![p] },
                        depth,
                        data: D::default(),
                        n_particles: 0,
                        dirty: true,
                    });
                    let node = self.try_node_mut(i)?;
                    let UpdateShape::Internal { children } = &mut node.shape else {
                        return Err(UpdateError::ShapeCorrupt { index: i });
                    };
                    children[slot] = ci;
                    node.dirty = true;
                    return Ok(());
                }
                c => i = c,
            }
        }
    }

    /// Sieves a whole batch down from the subtree root in one recursive
    /// group pass. At each interior node the split geometry is computed
    /// once and the batch is stable-partitioned across the child slots;
    /// groups landing on a missing child materialise it as a single new
    /// leaf. Relative particle order is preserved all the way down, so
    /// the resulting buckets — and the flattened arena — are
    /// bit-identical to calling [`Self::insert`] on each particle in
    /// batch order. Returns the number of particles inserted.
    pub fn insert_batch(&mut self, batch: Vec<Particle>) -> Result<u64, UpdateError> {
        if batch.is_empty() {
            return Ok(0);
        }
        let n = batch.len() as u64;
        // The recursion partitions *indices* into `batch` — particles
        // are only copied once, out of the batch into their destination
        // leaf, instead of being re-grouped into fresh vectors at every
        // level of the sieve.
        let mut idx: Vec<u32> = (0..batch.len() as u32).collect();
        let mut scratch: Vec<u32> = vec![0; batch.len()];
        self.sieve_batch(0, &batch, &mut idx, &mut scratch)?;
        Ok(n)
    }

    fn sieve_batch(
        &mut self,
        i: u32,
        batch: &[Particle],
        idx: &mut [u32],
        scratch: &mut [u32],
    ) -> Result<(), UpdateError> {
        fn gather<'a>(
            batch: &'a [Particle],
            idx: &'a [u32],
        ) -> impl Iterator<Item = Particle> + 'a {
            idx.iter().map(|&k| batch[k as usize])
        }
        let children = match &self.try_node(i)?.shape {
            UpdateShape::Empty => {
                let node = self.try_node_mut(i)?;
                node.shape = UpdateShape::Leaf { particles: gather(batch, idx).collect() };
                node.dirty = true;
                return Ok(());
            }
            UpdateShape::Leaf { .. } => {
                let node = self.try_node_mut(i)?;
                let UpdateShape::Leaf { particles } = &mut node.shape else {
                    return Err(UpdateError::ShapeCorrupt { index: i });
                };
                particles.extend(gather(batch, idx));
                node.dirty = true;
                return Ok(());
            }
            UpdateShape::Internal { children } => *children,
        };
        // Stable-partition the index range by child slot (two cheap
        // passes: count, then scatter through the scratch range). The
        // split geometry is stable for the whole batch: octant/midpoint
        // planes are fixed by the node's box, and a recovered k-d plane
        // cannot change mid-batch (children created during the batch
        // inherit their boxes from that same plane).
        let node = self.try_node(i)?;
        let (depth, bbox, key) = (node.depth, node.bbox, node.key);
        let oct = if self.tree_type == TreeType::Octree { Some(bbox) } else { None };
        let plane = match oct {
            Some(_) => None,
            None => Some(self.split_plane(i, &children)?),
        };
        let slot_of = |pos: Vec3| match (&oct, &plane) {
            (Some(b), _) => b.octant_of(pos),
            (None, Some((axis, plane))) => {
                if pos.component(axis.index()) < *plane {
                    0
                } else {
                    1
                }
            }
            _ => unreachable!("either octant or plane split"),
        };
        let mut counts = [0usize; 8];
        for &k in idx.iter() {
            counts[slot_of(batch[k as usize].pos)] += 1;
        }
        let mut offs = [0usize; 8];
        let mut acc = 0;
        for (slot, &c) in counts.iter().enumerate() {
            offs[slot] = acc;
            acc += c;
        }
        for &k in idx.iter() {
            let s = slot_of(batch[k as usize].pos);
            scratch[offs[s]] = k;
            offs[s] += 1;
        }
        idx.copy_from_slice(scratch);
        let (mut idx_rest, mut scratch_rest) = (idx, scratch);
        for (slot, &len) in counts.iter().enumerate() {
            if len == 0 {
                continue;
            }
            let (group, ir) = std::mem::take(&mut idx_rest).split_at_mut(len);
            let (sub_scratch, sr) = std::mem::take(&mut scratch_rest).split_at_mut(len);
            (idx_rest, scratch_rest) = (ir, sr);
            // Re-read the child slot: an earlier group may have
            // materialised a sibling (never this slot).
            let child = match &self.try_node(i)?.shape {
                UpdateShape::Internal { children } => children[slot],
                _ => return Err(UpdateError::ShapeCorrupt { index: i }),
            };
            match child {
                NO_NODE => {
                    let bits = self.tree_type.bits_per_level();
                    let (child_bbox, child_key) = match plane {
                        None => (bbox.octant(slot), key.child(slot, bits)),
                        Some((axis, plane)) => {
                            let (lo, hi) = bbox.split_at(axis, plane);
                            (if slot == 0 { lo } else { hi }, key.child(slot, bits))
                        }
                    };
                    let ci = self.alloc(UpdateNode {
                        key: child_key,
                        bbox: child_bbox,
                        shape: UpdateShape::Leaf { particles: gather(batch, group).collect() },
                        depth: depth + 1,
                        data: D::default(),
                        n_particles: 0,
                        dirty: true,
                    });
                    let node = self.try_node_mut(i)?;
                    let UpdateShape::Internal { children } = &mut node.shape else {
                        return Err(UpdateError::ShapeCorrupt { index: i });
                    };
                    children[slot] = ci;
                    node.dirty = true;
                }
                c => self.sieve_batch(c, batch, group, sub_scratch)?,
            }
        }
        Ok(())
    }

    /// Which child slot of interior node `i` the position sieves into,
    /// plus that child's region box and key. Mirrors the builder's split
    /// assignment: octants tie toward the high side, planes send
    /// `pos < plane` low.
    fn sieve_target(
        &self,
        i: u32,
        children: &[u32; 8],
        pos: Vec3,
    ) -> Result<(usize, BoundingBox, NodeKey), UpdateError> {
        let node = self.try_node(i)?;
        let bits = self.tree_type.bits_per_level();
        if self.tree_type == TreeType::Octree {
            let slot = node.bbox.octant_of(pos);
            return Ok((slot, node.bbox.octant(slot), node.key.child(slot, bits)));
        }
        let (axis, plane) = self.split_plane(i, children)?;
        let slot = if pos.component(axis.index()) < plane { 0 } else { 1 };
        let (lo, hi) = node.bbox.split_at(axis, plane);
        Ok((slot, if slot == 0 { lo } else { hi }, node.key.child(slot, bits)))
    }

    /// Recovers the split plane of a binary interior node. BinaryOct
    /// always splits at the spatial midpoint; k-d planes are recovered
    /// from a child's region box (the builder made child 0's high face —
    /// equivalently child 1's low face — the plane).
    fn split_plane(&self, i: u32, children: &[u32; 8]) -> Result<(Axis, f64), UpdateError> {
        let node = self.try_node(i)?;
        let axis = match self.tree_type.cycling_axis(self.root_depth + node.depth) {
            Some(a) => a,
            None => node.bbox.longest_axis(),
        };
        if self.tree_type == TreeType::BinaryOct {
            return Ok((axis, node.bbox.center().component(axis.index())));
        }
        if children[0] != NO_NODE {
            Ok((axis, self.try_node(children[0])?.bbox.hi.component(axis.index())))
        } else if children[1] != NO_NODE {
            Ok((axis, self.try_node(children[1])?.bbox.lo.component(axis.index())))
        } else {
            Ok((axis, node.bbox.center().component(axis.index())))
        }
    }

    /// One bottom-up repair pass: splits overfull leaves, prunes
    /// emptied children, collapses underfull interiors, and
    /// re-accumulates `Data` and particle counts along dirty root paths
    /// only. Untouched subtrees are skipped entirely (and keep their
    /// summaries bit-for-bit).
    ///
    /// `balance_alpha` is the BB[α] weight-balance factor: a refreshed
    /// interior node of a median-split tree whose heaviest child holds
    /// more than `α · total` particles marks the subtree unbalanced
    /// (the caller rebuilds it). Nodes holding at most two buckets'
    /// worth of particles are exempt — at that size integer bucket
    /// granularity makes the ratio meaningless and a rebuild cannot
    /// help.
    pub fn repair(&mut self, balance_alpha: f64) -> Result<RepairReport, UpdateError> {
        let mut report = RepairReport::default();
        let mut unbalanced = false;
        self.refresh(0, balance_alpha, &mut report.stats, &mut unbalanced)?;
        report.unbalanced = unbalanced;
        Ok(report)
    }

    /// Returns whether anything beneath (or at) `i` changed.
    fn refresh(
        &mut self,
        i: u32,
        alpha: f64,
        stats: &mut UpdateStats,
        unbalanced: &mut bool,
    ) -> Result<bool, UpdateError> {
        enum Kind {
            Empty,
            Leaf(usize),
            Internal([u32; 8]),
        }
        let kind = match &self.try_node(i)?.shape {
            UpdateShape::Empty => Kind::Empty,
            UpdateShape::Leaf { particles } => Kind::Leaf(particles.len()),
            UpdateShape::Internal { children } => Kind::Internal(*children),
        };
        match kind {
            Kind::Empty => {
                let node = self.try_node_mut(i)?;
                let was = node.dirty;
                node.dirty = false;
                Ok(was)
            }
            Kind::Leaf(len) => {
                if !self.try_node(i)?.dirty {
                    return Ok(false);
                }
                if len > self.bucket_size && self.try_node(i)?.depth < self.max_local_depth {
                    self.split_leaf(i, stats)?;
                    return self.refresh(i, alpha, stats, unbalanced);
                }
                // A leaf at the depth cap may stay oversize, exactly as
                // the builder leaves it for coincident particles.
                let (data, n) = {
                    let node = self.try_node(i)?;
                    let UpdateShape::Leaf { particles } = &node.shape else {
                        return Err(UpdateError::ShapeCorrupt { index: i });
                    };
                    (D::from_leaf(particles, &node.bbox), particles.len() as u32)
                };
                let node = self.try_node_mut(i)?;
                if n == 0 {
                    node.shape = UpdateShape::Empty;
                    node.data = D::default();
                } else {
                    node.data = data;
                }
                node.n_particles = n;
                node.dirty = false;
                stats.n_refreshed += 1;
                Ok(true)
            }
            Kind::Internal(mut children) => {
                let mut any = self.try_node(i)?.dirty;
                for &c in &children {
                    if c != NO_NODE {
                        any |= self.refresh(c, alpha, stats, unbalanced)?;
                    }
                }
                if !any {
                    return Ok(false);
                }
                for ch in children.iter_mut() {
                    if *ch != NO_NODE && matches!(self.try_node(*ch)?.shape, UpdateShape::Empty) {
                        self.release(*ch);
                        *ch = NO_NODE;
                        stats.n_pruned += 1;
                    }
                }
                let mut total = 0u32;
                let mut max_child = 0u32;
                for &c in &children {
                    if c != NO_NODE {
                        let n = self.try_node(c)?.n_particles;
                        total += n;
                        max_child = max_child.max(n);
                    }
                }
                if total == 0 {
                    let node = self.try_node_mut(i)?;
                    node.shape = UpdateShape::Empty;
                    node.data = D::default();
                    node.n_particles = 0;
                    node.dirty = false;
                } else if (total as usize) <= self.bucket_size {
                    // Underfull interior: gather descendants (DFS slot
                    // order) back into one bucket.
                    let mut bucket = Vec::with_capacity(total as usize);
                    for &c in &children {
                        if c != NO_NODE {
                            self.collect(c, &mut bucket)?;
                            self.release_subtree(c)?;
                        }
                    }
                    let bbox = self.try_node(i)?.bbox;
                    let data = D::from_leaf(&bucket, &bbox);
                    let node = self.try_node_mut(i)?;
                    node.shape = UpdateShape::Leaf { particles: bucket };
                    node.data = data;
                    node.n_particles = total;
                    node.dirty = false;
                    stats.n_merges += 1;
                } else {
                    // Weight balance only matters for median-split
                    // trees: octree/binary-oct planes are fixed by
                    // geometry, so their maintained structure already
                    // equals a fresh build's.
                    if self.tree_type.is_median_split()
                        && total as usize > 2 * self.bucket_size
                        && max_child as f64 > alpha * total as f64
                    {
                        *unbalanced = true;
                    }
                    let mut data = D::default();
                    for &c in &children {
                        if c != NO_NODE {
                            data.merge(&self.try_node(c)?.data);
                        }
                    }
                    let node = self.try_node_mut(i)?;
                    node.shape = UpdateShape::Internal { children };
                    node.data = data;
                    node.n_particles = total;
                    node.dirty = false;
                }
                stats.n_refreshed += 1;
                Ok(true)
            }
        }
    }

    /// Splits an overfull leaf with the builder's own split rule, so
    /// maintained structure matches what a fresh build would produce.
    fn split_leaf(&mut self, i: u32, stats: &mut UpdateStats) -> Result<(), UpdateError> {
        let (mut particles, bbox, key, depth) = {
            let node = self.try_node_mut(i)?;
            let UpdateShape::Leaf { particles } = &mut node.shape else {
                return Err(UpdateError::ShapeCorrupt { index: i });
            };
            (std::mem::take(particles), node.bbox, node.key, node.depth)
        };
        let builder = TreeBuilder {
            tree_type: self.tree_type,
            bucket_size: self.bucket_size,
            parallel: false,
            root_key: self.root_key,
            root_depth: self.root_depth,
        };
        let groups = builder.split(&mut particles, &bbox, key, self.root_depth + depth);
        let mut children = [NO_NODE; 8];
        let mut rest = particles;
        for (slot, len, child_bbox, child_key) in groups {
            let tail = rest.split_off(len);
            let bucket = std::mem::replace(&mut rest, tail);
            let n = bucket.len() as u32;
            children[slot] = self.alloc(UpdateNode {
                key: child_key,
                bbox: child_bbox,
                shape: UpdateShape::Leaf { particles: bucket },
                depth: depth + 1,
                data: D::default(),
                n_particles: n,
                dirty: true,
            });
        }
        debug_assert!(rest.is_empty());
        let node = self.try_node_mut(i)?;
        node.shape = UpdateShape::Internal { children };
        node.dirty = true;
        stats.n_splits += 1;
        Ok(())
    }

    fn release_subtree(&mut self, i: u32) -> Result<(), UpdateError> {
        if let UpdateShape::Internal { children } = &self.try_node(i)?.shape {
            let children = *children;
            for c in children {
                if c != NO_NODE {
                    self.release_subtree(c)?;
                }
            }
        }
        self.release(i);
        Ok(())
    }

    /// Emits the arena form for the cache/traversal pipeline,
    /// reproducing [`TreeBuilder`]'s exact layout: pre-order with
    /// children in ascending slot order and leaf buckets tiling the
    /// particle array in DFS order. A zero-motion
    /// classify→repair→flatten round trip is bit-identical to the
    /// original build.
    pub fn flatten(&self) -> Result<BuiltTree<D>, UpdateError> {
        let mut nodes = Vec::with_capacity(self.n_nodes());
        let mut particles = Vec::with_capacity(self.n_particles() as usize);
        self.flatten_rec(0, &mut nodes, &mut particles)?;
        Ok(BuiltTree { nodes, particles, bits_per_level: self.tree_type.bits_per_level() })
    }

    fn flatten_rec(
        &self,
        i: u32,
        out: &mut Vec<BuildNode<D>>,
        parts: &mut Vec<Particle>,
    ) -> Result<u32, UpdateError> {
        let n = self.try_node(i)?;
        let idx = out.len();
        out.push(BuildNode {
            key: n.key,
            bbox: n.bbox,
            shape: NodeShape::Empty,
            children: [NO_NODE; 8],
            data: n.data.clone(),
            n_particles: n.n_particles,
            depth: n.depth,
        });
        match &n.shape {
            UpdateShape::Leaf { particles } => {
                let start = parts.len() as u32;
                parts.extend_from_slice(particles);
                out[idx].shape = NodeShape::Leaf { start, end: start + particles.len() as u32 };
            }
            UpdateShape::Internal { children } => {
                let children = *children;
                out[idx].shape = NodeShape::Internal;
                for (slot, c) in children.into_iter().enumerate() {
                    if c != NO_NODE {
                        let ci = self.flatten_rec(c, out, parts)?;
                        out[idx].children[slot] = ci;
                    }
                }
            }
            UpdateShape::Empty => {}
        }
        Ok(idx as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountData;
    use paratreet_particles::{gen, ParticleVec};

    const ALPHA: f64 = 0.7;

    fn built(tree_type: TreeType, n: usize, bucket: usize) -> BuiltTree<CountData> {
        let ps = gen::uniform_cube(n, 42, 1.0, 1.0);
        let bbox = ps.bounding_box().padded(1e-9);
        let bbox = if tree_type == TreeType::Octree { bbox.bounding_cube() } else { bbox };
        TreeBuilder::new(tree_type).bucket_size(bucket).build(ps, bbox)
    }

    fn assert_arena_identical(a: &BuiltTree<CountData>, b: &BuiltTree<CountData>) {
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.children, y.children);
            assert_eq!(x.n_particles, y.n_particles);
            assert_eq!(x.depth, y.depth);
            assert_eq!(x.data, y.data);
            assert_eq!(x.bbox.lo, y.bbox.lo);
            assert_eq!(x.bbox.hi, y.bbox.hi);
        }
        assert_eq!(a.particles, b.particles);
    }

    /// Swirl the master copy around the box centre, clamped inside the
    /// given universe.
    fn swirl(master: &mut [Particle], universe: &BoundingBox, shrink: f64, grow: f64) {
        let c = universe.center();
        for (i, p) in master.iter_mut().enumerate() {
            let r = p.pos - c;
            let scale = if i % 3 == 0 { shrink } else { grow };
            p.pos = c + r * scale;
            for a in 0..3 {
                let lo = universe.lo.component(a);
                let hi = universe.hi.component(a);
                let v = p.pos.component(a).clamp(lo, hi);
                match a {
                    0 => p.pos.x = v,
                    1 => p.pos.y = v,
                    _ => p.pos.z = v,
                }
            }
        }
    }

    #[test]
    fn adopt_flatten_round_trips_bit_identically() {
        for tt in [TreeType::Octree, TreeType::KdTree, TreeType::BinaryOct, TreeType::LongestDim] {
            let t = built(tt, 700, 8);
            let u = UpdatableTree::from_built(&t, tt, 8, 0);
            assert_arena_identical(&t, &u.flatten().unwrap());
        }
    }

    #[test]
    fn zero_motion_update_is_bit_identical() {
        let t = built(TreeType::Octree, 900, 8);
        let mut u = UpdatableTree::from_built(&t, TreeType::Octree, 8, 0);
        let mut master = t.particles.clone();
        // Accumulator churn (forces written back) must not dirty anything.
        for p in &mut master {
            p.acc = Vec3::new(1.0, 2.0, 3.0);
            p.potential = -4.0;
        }
        let cls = u.classify(&master).unwrap();
        assert_eq!(cls.n_moved, 0);
        assert!(cls.escapees.is_empty());
        let rep = u.repair(ALPHA).unwrap();
        assert_eq!(rep.stats, UpdateStats::default());
        assert!(!rep.unbalanced);
        let flat = u.flatten().unwrap();
        assert_eq!(flat.particles, master);
        assert_eq!(flat.nodes.len(), t.nodes.len());
        for (x, y) in flat.nodes.iter().zip(&t.nodes) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.data, y.data);
        }
    }

    #[test]
    fn motion_update_keeps_tree_valid_and_conserves_particles() {
        let t = built(TreeType::Octree, 1200, 8);
        let universe = t.root().bbox;
        let mut u = UpdatableTree::from_built(&t, TreeType::Octree, 8, 0);
        let mut master = t.particles.clone();
        swirl(&mut master, &universe, 0.9, 1.04);
        let cls = u.classify(&master).unwrap();
        assert!(cls.n_moved > 0);
        assert!(!cls.escapees.is_empty(), "swirl should evict some particles");
        for p in &cls.escapees {
            assert!(universe.contains(p.pos));
        }
        let n = u.insert_batch(cls.escapees).unwrap();
        assert!(n > 0);
        let rep = u.repair(ALPHA).unwrap();
        assert!(rep.stats.n_refreshed > 0);
        let flat = u.flatten().unwrap();
        assert_eq!(flat.particles.len(), master.len());
        flat.validate(8).unwrap();
        // Every node's count doubles as CountData: still consistent.
        for n in &flat.nodes {
            assert_eq!(n.data.count, n.n_particles as u64);
        }
    }

    #[test]
    fn batch_insert_matches_sequential_insert_bit_identically() {
        for tt in [TreeType::Octree, TreeType::KdTree, TreeType::BinaryOct, TreeType::LongestDim] {
            let t = built(tt, 800, 8);
            let universe = t.root().bbox;
            let mut seq = UpdatableTree::from_built(&t, tt, 8, 0);
            let mut bat = UpdatableTree::from_built(&t, tt, 8, 0);
            let mut master = t.particles.clone();
            swirl(&mut master, &universe, 0.85, 1.06);
            let mut escapees = seq.classify(&master).unwrap().escapees;
            let escapees_b = bat.classify(&master).unwrap().escapees;
            assert_eq!(escapees.len(), escapees_b.len());
            // Both paths apply the same sorted batch order.
            escapees.sort_by_key(|p| p.id);
            let mut sorted_b = escapees_b;
            sorted_b.sort_by_key(|p| p.id);
            for p in escapees.iter() {
                seq.insert(*p).unwrap();
            }
            bat.insert_batch(sorted_b).unwrap();
            let rs = seq.repair(ALPHA).unwrap();
            let rb = bat.repair(ALPHA).unwrap();
            assert_eq!(rs.stats, rb.stats, "{tt:?}");
            assert_eq!(rs.unbalanced, rb.unbalanced, "{tt:?}");
            assert_arena_identical(&seq.flatten().unwrap(), &bat.flatten().unwrap());
        }
    }

    #[test]
    fn inserts_split_overfull_leaves() {
        let ps = gen::uniform_cube(64, 7, 1.0, 1.0);
        let bbox = ps.bounding_box().padded(1e-9).bounding_cube();
        let t: BuiltTree<CountData> =
            TreeBuilder::new(TreeType::Octree).bucket_size(8).build(ps, bbox);
        let mut u = UpdatableTree::from_built(&t, TreeType::Octree, 8, 0);
        let extra = gen::uniform_cube(64, 9, 1.0, 1.0);
        let root = u.root_bbox();
        let mut batch = Vec::new();
        for mut p in extra {
            p.id += 10_000;
            p.pos.x = p.pos.x.clamp(root.lo.x, root.hi.x);
            p.pos.y = p.pos.y.clamp(root.lo.y, root.hi.y);
            p.pos.z = p.pos.z.clamp(root.lo.z, root.hi.z);
            batch.push(p);
        }
        assert_eq!(u.insert_batch(batch).unwrap(), 64);
        let rep = u.repair(ALPHA).unwrap();
        assert!(rep.stats.n_splits > 0, "doubling the population must split leaves");
        let flat = u.flatten().unwrap();
        assert_eq!(flat.particles.len(), 128);
        flat.validate(8).unwrap();
    }

    #[test]
    fn evictions_merge_underfull_interiors() {
        let t = built(TreeType::KdTree, 512, 8);
        let mut u = UpdatableTree::from_built(&t, TreeType::KdTree, 8, 0);
        // Move 7 of every 8 particles to one corner: most of the tree
        // drains and interiors collapse.
        let corner = t.root().bbox.lo;
        let mut master = t.particles.clone();
        for (i, p) in master.iter_mut().enumerate() {
            if i % 8 != 0 {
                p.pos = corner + Vec3::splat(1e-6 * (i as f64 + 1.0));
            }
        }
        let cls = u.classify(&master).unwrap();
        u.insert_batch(cls.escapees).unwrap();
        let rep = u.repair(ALPHA).unwrap();
        assert!(rep.stats.n_merges + rep.stats.n_pruned > 0, "drained regions must collapse");
        // Cramming 7/8ths of a k-d tree's particles into one corner is
        // exactly the drift the α criterion exists to catch.
        assert!(rep.unbalanced, "corner collapse must trip the weight-balance check");
        let flat = u.flatten().unwrap();
        assert_eq!(flat.particles.len(), 512);
        flat.validate(8).unwrap();
    }

    #[test]
    fn octree_never_reports_imbalance() {
        let t = built(TreeType::Octree, 512, 8);
        let mut u = UpdatableTree::from_built(&t, TreeType::Octree, 8, 0);
        let corner = t.root().bbox.lo;
        let mut master = t.particles.clone();
        for (i, p) in master.iter_mut().enumerate() {
            if i % 8 != 0 {
                p.pos = corner + Vec3::splat(1e-4 * (i as f64 + 1.0));
            }
        }
        let cls = u.classify(&master).unwrap();
        u.insert_batch(cls.escapees).unwrap();
        let rep = u.repair(ALPHA).unwrap();
        // Octree structure is position-determined: a rebuild would
        // reproduce the maintained shape, so imbalance is never raised.
        assert!(!rep.unbalanced);
        u.flatten().unwrap().validate(8).unwrap();
    }

    #[test]
    fn stale_slab_index_is_an_error_not_a_panic() {
        let t = built(TreeType::Octree, 300, 8);
        let mut u = UpdatableTree::from_built(&t, TreeType::Octree, 8, 0);
        // Kill a non-root slab slot out from under the tree.
        let victim = (1..u.nodes.len()).find(|&i| u.nodes[i].is_some()).unwrap();
        u.nodes[victim] = None;
        for p in u.nodes.iter_mut().flatten() {
            p.dirty = true;
        }
        assert!(matches!(u.flatten(), Err(UpdateError::StaleSlab { .. })));
        assert!(matches!(u.repair(ALPHA), Err(UpdateError::StaleSlab { .. })));
        assert!(matches!(u.all_particles(), Err(UpdateError::StaleSlab { .. })));
        let master = t.particles.clone();
        assert!(matches!(u.classify(&master), Err(UpdateError::StaleSlab { .. })));
    }

    #[test]
    fn population_mismatch_is_an_error_not_a_panic() {
        let t = built(TreeType::Octree, 100, 8);
        let mut u = UpdatableTree::from_built(&t, TreeType::Octree, 8, 0);
        let master = t.particles[..50].to_vec();
        assert_eq!(
            u.classify(&master),
            Err(UpdateError::PopulationMismatch { expected: 100, got: 50 })
        );
    }
}
