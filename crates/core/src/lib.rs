//! The ParaTreeT framework: the paper's public API.
//!
//! This crate ties the substrates together into the programming model of
//! §II: an application supplies a [`Data`](paratreet_tree::Data)
//! implementation and a [`Visitor`]; the framework handles
//! decomposition, tree build, caching of remote data, traversal
//! scheduling, and write-back.
//!
//! Three execution engines share all of that logic:
//!
//! * [`Framework`] — the shared-memory engine: one process, rayon
//!   workers, everything local (used by the examples, the unit tests,
//!   and the cache simulator),
//! * [`DistributedEngine`] — the same pipeline on the discrete-event
//!   machine model, with Partitions and Subtrees placed on ranks,
//!   fetches and fills crossing the simulated network, and per-phase
//!   virtual-time accounting. This is what regenerates the paper's
//!   scaling figures.
//! * [`ThreadedEngine`] — the same pipeline on *real* OS threads and
//!   channels: rank thread-groups exchange genuine serialized fills
//!   while traversal workers read the wait-free cache concurrently —
//!   the strongest exercise of the concurrency design.
//!
//! The Partitions–Subtrees model (§II-C) lives in [`decomp`]: particles
//! are decomposed twice — once by the *decomposition type* into
//! Partitions (load) and once consistently with the *tree type* into
//! Subtrees (memory) — and only leaf buckets are split where the two
//! disagree.

pub mod config;
pub mod decomp;
pub mod des_engine;
pub mod forest;
pub mod framework;
pub mod maintain;
pub mod threaded;
pub mod traversal;
pub mod visitor;

pub use config::{Configuration, DecompType, IncrementalConfig, SfcCurve, TraversalKind};
pub use decomp::{
    decompose, decompose_within, universe_for, Decomposition, Partitioner, SubtreePiece,
};
pub use des_engine::{
    sfc_balanced_assignment, DistributedEngine, IterationReport, RecoveryStats, DES_FLIGHT_SERIES,
};
pub use forest::{
    decompose_forest, des_ghost_exchange, enforce_seam_balance, exchange_ghosts, DomainSpec,
    Forest, ForestMaintainer, ForestRound, ForestStats, GhostDesReport, GhostLayer, GhostRoute,
    GhostStats, GhostZone,
};
pub use framework::{Framework, SnapshotHook, StepReport};
pub use maintain::{MaintainRound, TreeMaintainer, UpdateTotals};
pub use threaded::{ThreadedEngine, ThreadedReport};
pub use traversal::{CacheModel, TraversalStats, WorkCounts};
pub use visitor::{SpatialNodeView, TargetBucket, Visitor};
