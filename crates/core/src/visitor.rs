//! The `Visitor` abstraction and the traversal-facing views (§II-A-2).
//!
//! A visitor "helps the user perform actions at each step of the
//! traversal, including telling the library when to prune": `open`
//! decides whether to descend under a source node, `node` consumes the
//! node's summary when pruned, and `leaf` computes exact interactions
//! when the traversal bottoms out. The split between `node` and `leaf`
//! exists "so that compilers can freely generate vectorized instructions
//! in node() without restriction from the control flow in leaf()" —
//! in Rust terms: both are static calls on a monomorphised visitor type,
//! no virtual dispatch on the hot path.

use paratreet_cache::{CacheNode, NodeKind};
use paratreet_geometry::{BoundingBox, NodeKey};
use paratreet_particles::Particle;
use paratreet_tree::Data;

/// Read-only view of a source tree node handed to visitor callbacks —
/// the paper's `SpatialNode<Data>`.
pub struct SpatialNodeView<'a, D> {
    /// Node key in the global tree.
    pub key: NodeKey,
    /// Spatial footprint.
    pub bbox: &'a BoundingBox,
    /// Particles beneath the node.
    pub n_particles: u32,
    /// Accumulated `Data`.
    pub data: &'a D,
    /// Bucket particles — non-empty only for materialised leaves.
    pub particles: &'a [Particle],
}

impl<'a, D: Data> SpatialNodeView<'a, D> {
    /// Builds a view over a cache node.
    pub fn of(node: &'a CacheNode<D>) -> SpatialNodeView<'a, D> {
        SpatialNodeView {
            key: node.key,
            bbox: &node.bbox,
            n_particles: node.n_particles,
            data: &node.data,
            particles: if node.kind == NodeKind::Leaf { &node.particles } else { &[] },
        }
    }
}

/// One target bucket owned by a Partition: writable copies of its
/// particles plus visitor-defined per-bucket scratch state.
///
/// Buckets are handed to Partitions during the leaf-sharing step; a
/// bucket whose particles span two Partitions is *split* into local
/// buckets (Fig. 5), so a target bucket may be a strict subset of a tree
/// leaf.
#[derive(Clone, Debug)]
pub struct TargetBucket<S> {
    /// Key of the tree leaf this bucket came from.
    pub leaf_key: NodeKey,
    /// Writable particle copies; accumulators (acc, density, ...) are
    /// written here and merged back after the traversal.
    pub particles: Vec<Particle>,
    /// Tight bounding box of the bucket's particles.
    pub bbox: BoundingBox,
    /// Visitor-defined per-bucket state (e.g. k-NN candidate heaps).
    pub state: S,
}

impl<S> TargetBucket<S> {
    /// Number of particles in the bucket.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// True when the bucket is empty (never produced by leaf sharing).
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }
}

/// The traversal-step callbacks (see module docs). All methods take
/// `&self`: visitors are stateless recipes — per-bucket mutable state
/// lives in [`TargetBucket::state`], which keeps parallel execution
/// race-free by construction ("program state is well-protected through
/// read-only semantics enforced on functions executed in parallel").
pub trait Visitor: Send + Sync {
    /// The tree `Data` this visitor interprets.
    type Data: Data;
    /// Per-target-bucket scratch state.
    type State: Default + Clone + Send + Sync + 'static;

    /// Should the traversal descend below `source` for this target?
    fn open(
        &self,
        source: &SpatialNodeView<'_, Self::Data>,
        target: &TargetBucket<Self::State>,
    ) -> bool;

    /// Consume `source`'s summary for this target (pruned path).
    fn node(
        &self,
        source: &SpatialNodeView<'_, Self::Data>,
        target: &mut TargetBucket<Self::State>,
    );

    /// Exact interaction of a source leaf with this target.
    fn leaf(
        &self,
        source: &SpatialNodeView<'_, Self::Data>,
        target: &mut TargetBucket<Self::State>,
    );

    /// Dual-tree hook: when evaluating node–node interactions, `true`
    /// opens both target and source (B² child interactions), `false`
    /// keeps the target and opens only the source (B interactions).
    /// Single-tree traversals ignore this.
    fn cell(
        &self,
        _source: &SpatialNodeView<'_, Self::Data>,
        _target: &SpatialNodeView<'_, Self::Data>,
    ) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_geometry::{Vec3, ROOT_KEY};
    use paratreet_tree::CountData;

    /// A visitor that counts callback invocations in its bucket state.
    struct CountingVisitor;

    #[derive(Clone, Default)]
    struct Calls {
        nodes: usize,
        leaves: usize,
    }

    impl Visitor for CountingVisitor {
        type Data = CountData;
        type State = Calls;
        fn open(&self, source: &SpatialNodeView<'_, CountData>, _t: &TargetBucket<Calls>) -> bool {
            source.n_particles > 1
        }
        fn node(&self, _s: &SpatialNodeView<'_, CountData>, t: &mut TargetBucket<Calls>) {
            t.state.nodes += 1;
        }
        fn leaf(&self, _s: &SpatialNodeView<'_, CountData>, t: &mut TargetBucket<Calls>) {
            t.state.leaves += 1;
        }
    }

    #[test]
    fn view_exposes_leaf_particles_only_for_leaves() {
        let b = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let ps = vec![Particle::point_mass(0, 1.0, Vec3::splat(0.5))];
        let leaf = CacheNode::new(ROOT_KEY, b, 1, CountData { count: 1 }, 0, NodeKind::Leaf, ps);
        let internal =
            CacheNode::new(ROOT_KEY, b, 5, CountData { count: 5 }, 0, NodeKind::Internal, vec![]);
        assert_eq!(SpatialNodeView::of(&leaf).particles.len(), 1);
        assert!(SpatialNodeView::of(&internal).particles.is_empty());
    }

    #[test]
    fn visitor_state_lives_in_bucket() {
        let b = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let node =
            CacheNode::new(ROOT_KEY, b, 3, CountData { count: 3 }, 0, NodeKind::Internal, vec![]);
        let v = CountingVisitor;
        let mut bucket = TargetBucket {
            leaf_key: ROOT_KEY,
            particles: vec![Particle::point_mass(0, 1.0, Vec3::ZERO)],
            bbox: b,
            state: Calls::default(),
        };
        let view = SpatialNodeView::of(&node);
        assert!(v.open(&view, &bucket));
        v.node(&view, &mut bucket);
        v.leaf(&view, &mut bucket);
        assert_eq!(bucket.state.nodes, 1);
        assert_eq!(bucket.state.leaves, 1);
        assert_eq!(bucket.len(), 1);
        assert!(!bucket.is_empty());
        assert!(v.cell(&view, &view), "default cell opens both");
    }
}
