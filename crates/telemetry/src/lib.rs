//! Projections-style telemetry for the ParaTreeT reproduction.
//!
//! The paper's whole performance story (Fig. 3 cache models, the Fig. 9
//! time profile, the scaling figures) was read off Charm++ *Projections*
//! timelines. This crate is the unified layer that lets every engine in
//! the workspace produce the same artifacts:
//!
//! * [`Telemetry`] — the cheap cloneable handle engines carry. Enabled,
//!   it records spans and counts into a [`recorder::ShardedRecorder`]
//!   (one buffer per worker, atomic-swap drain — the same wait-free
//!   discipline as the software cache). Disabled, every call is an
//!   inlined branch on a `None`; with the `recorder` cargo feature off,
//!   the handle is a zero-sized struct and calls compile to nothing.
//! * [`MetricsRegistry`] — named counters/gauges that absorb the
//!   workspace's stats structs ([`MetricSource`]), so reports are
//!   queried by metric name instead of hand-plumbed fields.
//! * [`chrome`] — Chrome trace-event JSON export (loadable in Perfetto
//!   or chrome://tracing: one track per worker per rank) plus a schema
//!   validator; [`export`] writes traces and metric dumps to files.
//!
//! Clock domains: the discrete-event engine stamps spans in *virtual*
//! microseconds (deterministic — same seed, byte-identical trace); the
//! threaded executor and shared-memory framework stamp *wall* time.

pub mod chrome;
pub mod export;
pub mod hist;
pub mod json;
pub mod metrics;
#[cfg(feature = "recorder")]
pub mod recorder;
pub mod span;
pub mod timeseries;

pub use chrome::{chrome_trace_json, validate_chrome_trace};
pub use hist::{Exemplar, Histogram, HistogramSnapshot};
pub use json::Json;
pub use metrics::{MetricSource, MetricValue, MetricsRegistry};
pub use span::{ClockDomain, Span, SpanLink, Trace, Track};
pub use timeseries::{FlightRecorder, TimeSeries};

#[cfg(feature = "recorder")]
use recorder::{Recorder, ShardedRecorder};
#[cfg(feature = "recorder")]
use std::sync::Arc;

/// The handle instrumented code holds. Cloning is cheap (an `Arc` when
/// enabled, nothing otherwise); the disabled handle makes every method
/// a no-op.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    #[cfg(feature = "recorder")]
    inner: Option<Arc<ShardedRecorder>>,
}

impl Telemetry {
    /// A disabled handle: records nothing, costs (almost) nothing.
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// An enabled handle stamping virtual-time spans (the DES engine).
    /// Callers supply explicit timestamps through [`Telemetry::span_at`].
    #[cfg(feature = "recorder")]
    pub fn virtual_time(n_shards: usize) -> Telemetry {
        Telemetry { inner: Some(Arc::new(ShardedRecorder::new(n_shards, ClockDomain::Virtual))) }
    }

    /// See the enabled variant; without the `recorder` feature this
    /// returns a disabled handle.
    #[cfg(not(feature = "recorder"))]
    pub fn virtual_time(_n_shards: usize) -> Telemetry {
        Telemetry::default()
    }

    /// An enabled handle stamping wall-clock spans (threaded executor,
    /// shared-memory framework). `n_shards` should be sized to the
    /// expected thread count; undersizing is safe, just more contended.
    #[cfg(feature = "recorder")]
    pub fn wall(n_shards: usize) -> Telemetry {
        Telemetry { inner: Some(Arc::new(ShardedRecorder::new(n_shards, ClockDomain::Wall))) }
    }

    /// See the enabled variant; without the `recorder` feature this
    /// returns a disabled handle.
    #[cfg(not(feature = "recorder"))]
    pub fn wall(_n_shards: usize) -> Telemetry {
        Telemetry::default()
    }

    /// Whether spans are actually being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "recorder")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "recorder"))]
        {
            false
        }
    }

    /// Records a completed span with explicit timestamps (microseconds
    /// in the recorder's clock domain). This is the DES path: the engine
    /// knows virtual start/duration exactly.
    #[inline]
    pub fn span_at(
        &self,
        track: Track,
        name: &'static str,
        start_us: f64,
        dur_us: f64,
        key: Option<u64>,
    ) {
        #[cfg(feature = "recorder")]
        if let Some(r) = &self.inner {
            r.record_span(Span { track, name, start_us, dur_us, key, link: SpanLink::NONE });
        }
        #[cfg(not(feature = "recorder"))]
        {
            let _ = (track, name, start_us, dur_us, key);
        }
    }

    /// Records a completed span with explicit timestamps *and* causal
    /// context (span id / parent / request). This is the request-tracing
    /// path: `serve` stamps every stage of a request's life with the
    /// request id and a parent link to the per-request root span.
    #[inline]
    pub fn span_linked(
        &self,
        track: Track,
        name: &'static str,
        start_us: f64,
        dur_us: f64,
        key: Option<u64>,
        link: SpanLink,
    ) {
        #[cfg(feature = "recorder")]
        if let Some(r) = &self.inner {
            r.record_span(Span { track, name, start_us, dur_us, key, link });
        }
        #[cfg(not(feature = "recorder"))]
        {
            let _ = (track, name, start_us, dur_us, key, link);
        }
    }

    /// A fresh span id for linking (unique within this handle's
    /// recorder, never 0). Returns 0 on a disabled handle — callers
    /// should gate tracing on [`Telemetry::is_enabled`] anyway.
    #[inline]
    pub fn next_span_id(&self) -> u64 {
        #[cfg(feature = "recorder")]
        if let Some(r) = &self.inner {
            return r.next_span_id();
        }
        0
    }

    /// Microseconds since the recorder was created (wall clock).
    /// Returns 0.0 on a disabled handle.
    #[inline]
    pub fn now_us(&self) -> f64 {
        #[cfg(feature = "recorder")]
        if let Some(r) = &self.inner {
            return r.now_us();
        }
        0.0
    }

    /// Converts an [`std::time::Instant`] captured elsewhere (e.g. a
    /// request's submit time on a client thread) to microseconds on this
    /// recorder's clock, saturating at 0 for instants before the
    /// recorder epoch. Returns 0.0 on a disabled handle.
    #[inline]
    pub fn us_of(&self, t: std::time::Instant) -> f64 {
        #[cfg(feature = "recorder")]
        if let Some(r) = &self.inner {
            return t.saturating_duration_since(r.epoch()).as_secs_f64() * 1e6;
        }
        let _ = t;
        0.0
    }

    /// The calling thread's dense worker slot on this recorder (0 on a
    /// disabled handle). Used as the `worker` half of a [`Track`].
    #[inline]
    pub fn thread_slot(&self) -> u32 {
        #[cfg(feature = "recorder")]
        if let Some(r) = &self.inner {
            return r.thread_slot() as u32;
        }
        0
    }

    /// Runs `f`, recording a wall-clock span around it on the calling
    /// thread's track (`tid` = the thread's recorder id). This is the
    /// real-threads path: the executor and the cache don't know virtual
    /// time, they measure it.
    #[inline]
    pub fn wall_span<R>(
        &self,
        rank: u32,
        name: &'static str,
        key: Option<u64>,
        f: impl FnOnce() -> R,
    ) -> R {
        #[cfg(feature = "recorder")]
        if let Some(r) = &self.inner {
            let start_us = r.now_us();
            let out = f();
            let dur_us = r.now_us() - start_us;
            let track = Track { rank, worker: r.thread_slot() as u32 };
            r.record_span(Span { track, name, start_us, dur_us, key, link: SpanLink::NONE });
            return out;
        }
        #[cfg(not(feature = "recorder"))]
        {
            let _ = (rank, name, key);
        }
        f()
    }

    /// Adds `delta` to a named counter (merged across shards at drain).
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        #[cfg(feature = "recorder")]
        if let Some(r) = &self.inner {
            r.add_count(name, delta);
        }
        #[cfg(not(feature = "recorder"))]
        {
            let _ = (name, delta);
        }
    }

    /// Takes everything recorded so far. Returns an empty trace on a
    /// disabled handle.
    pub fn drain(&self) -> Trace {
        #[cfg(feature = "recorder")]
        if let Some(r) = &self.inner {
            return r.drain();
        }
        Trace::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.span_at(Track { rank: 0, worker: 0 }, "x", 0.0, 1.0, None);
        t.count("c", 5);
        let out = t.wall_span(0, "y", None, || 42);
        assert_eq!(out, 42);
        let trace = t.drain();
        assert!(trace.spans.is_empty() && trace.counters.is_empty());
    }

    #[cfg(feature = "recorder")]
    #[test]
    fn enabled_handle_records() {
        let t = Telemetry::virtual_time(2);
        t.span_at(Track { rank: 1, worker: 0 }, "build", 10.0, 5.0, Some(7));
        t.count("fills", 2);
        assert!(t.is_enabled());
        let trace = t.drain();
        assert_eq!(trace.clock, ClockDomain::Virtual);
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "build");
        assert_eq!(trace.counters["fills"], 2);
    }

    #[cfg(feature = "recorder")]
    #[test]
    fn wall_span_measures_and_returns() {
        let t = Telemetry::wall(1);
        let out = t.wall_span(3, "work", None, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            "done"
        });
        assert_eq!(out, "done");
        let trace = t.drain();
        assert_eq!(trace.clock, ClockDomain::Wall);
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].track.rank, 3);
        assert!(trace.spans[0].dur_us >= 1000.0, "slept ≥2ms");
    }
}
