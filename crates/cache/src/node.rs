//! Nodes of the per-process cached global tree.
//!
//! A [`CacheNode`] is immutable after publication except for two atomic
//! fields: the `requested` flag on placeholders and the child pointer
//! slots on internal nodes (which transition placeholder → expanded node
//! exactly once). Everything else is written before the node becomes
//! reachable, which is what makes lock-free reading sound.

use paratreet_geometry::{BoundingBox, NodeKey};
use paratreet_particles::Particle;
use paratreet_tree::Data;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// What a cached node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Interior node whose children (local or placeholder) are linked.
    Internal,
    /// Leaf with its bucket of particles present in `particles`.
    Leaf,
    /// A region with no particles.
    Empty,
    /// Summary-only stand-in for remote data: `data`, `bbox`, and
    /// `n_particles` are valid, but children/particles require a fetch.
    Placeholder,
}

/// One node of the cached global tree.
pub struct CacheNode<D> {
    /// Path key in the global tree.
    pub key: NodeKey,
    /// Spatial footprint.
    pub bbox: BoundingBox,
    /// Particles beneath this node.
    pub n_particles: u32,
    /// Accumulated application state (valid for placeholders too — the
    /// summary travels with the share/fill that announced the node).
    pub data: D,
    /// Rank that owns the authoritative copy of this subtree.
    pub home_rank: u32,
    /// Node kind (fixed at construction; placeholders are *replaced*,
    /// never mutated, when their data arrives).
    pub kind: NodeKind,
    /// Bucket particles (leaves only; empty otherwise).
    pub particles: Vec<Particle>,
    /// Whether a fetch for this placeholder is already in flight.
    pub requested: AtomicBool,
    /// Child links. Only the first `branch_factor` slots are used. A null
    /// pointer means the child does not exist (empty octant). Slots are
    /// written before publication and overwritten at most once afterwards
    /// (placeholder → expanded), always with `Release`.
    pub children: [AtomicPtr<CacheNode<D>>; 8],
}

impl<D: Data> CacheNode<D> {
    /// A node with no children linked yet.
    pub fn new(
        key: NodeKey,
        bbox: BoundingBox,
        n_particles: u32,
        data: D,
        home_rank: u32,
        kind: NodeKind,
        particles: Vec<Particle>,
    ) -> CacheNode<D> {
        CacheNode {
            key,
            bbox,
            n_particles,
            data,
            home_rank,
            kind,
            particles,
            requested: AtomicBool::new(false),
            children: Default::default(),
        }
    }

    /// Reads child slot `i` with `Acquire`, returning a reference bound
    /// to `self`'s lifetime (all nodes of one tree live equally long).
    #[inline]
    pub fn child(&self, i: usize) -> Option<&CacheNode<D>> {
        let p = self.children[i].load(Ordering::Acquire);
        // SAFETY: child pointers are only ever set to nodes owned by the
        // same `CacheTree`, which outlives every reference derived from
        // `&self`, and the pointed-to node was fully constructed before
        // the `Release` store that published the pointer.
        unsafe { p.as_ref() }
    }

    /// Iterates over present children (slots 0..`branch_factor`).
    pub fn children_iter(&self, branch_factor: usize) -> impl Iterator<Item = &CacheNode<D>> + '_ {
        (0..branch_factor).filter_map(move |i| self.child(i))
    }

    /// True when this node is a summary-only placeholder.
    #[inline]
    pub fn is_placeholder(&self) -> bool {
        self.kind == NodeKind::Placeholder
    }

    /// True when this node is a materialised leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.kind == NodeKind::Leaf
    }
}

/// A raw, lifetime-erased reference to a node of some [`crate::CacheTree`].
///
/// Traversal engines park work items across pause/resume boundaries, so
/// they cannot hold borrows; a handle defers the borrow to the moment of
/// use, tying the returned reference to the cache that owns the node.
pub struct NodeHandle<D>(*const CacheNode<D>);

impl<D> Clone for NodeHandle<D> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<D> Copy for NodeHandle<D> {}

impl<D> std::fmt::Debug for NodeHandle<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NodeHandle({:p})", self.0)
    }
}

// SAFETY: the pointer targets a node owned by a `CacheTree`, which the
// caller must still hold to dereference (see [`NodeHandle::get`]); the
// node itself is Sync for Sync `D`.
unsafe impl<D: Send + Sync> Send for NodeHandle<D> {}
unsafe impl<D: Send + Sync> Sync for NodeHandle<D> {}

impl<D> NodeHandle<D> {
    /// Wraps a node reference. The caller promises the node belongs to a
    /// cache that will outlive every later [`NodeHandle::get`].
    pub fn new(node: &CacheNode<D>) -> NodeHandle<D> {
        NodeHandle(node)
    }

    /// Re-borrows the node against the cache that owns it.
    ///
    /// The `owner` parameter is the lifetime witness: passing the owning
    /// [`crate::CacheTree`] (or anything borrowed from it) guarantees the
    /// node is still alive, since cache nodes are never freed before the
    /// tree drops.
    #[inline]
    pub fn get<'a, T: ?Sized>(&self, _owner: &'a T) -> &'a CacheNode<D> {
        // SAFETY: per the constructor contract the node outlives `owner`'s
        // borrow; nodes are never moved or freed while their tree lives.
        unsafe { &*self.0 }
    }
}

impl<D> std::fmt::Debug for CacheNode<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheNode")
            .field("key", &self.key)
            .field("kind", &self.kind)
            .field("n_particles", &self.n_particles)
            .field("home_rank", &self.home_rank)
            .finish()
    }
}
