//! Table II: cache utilisation statistics for a gravity traversal of
//! 100k particles, ParaTreeT vs ChaNGa, on 1–16 CPUs of one SKX node.
//!
//! The hardware counters of the paper are replaced by the cache
//! simulator (see `paratreet-cachesim`): private L1D/L2 per CPU, shared
//! L3, replaying the real traversal's access stream in both styles.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin table2_cache_stats -- \
//!     --particles 100000
//! ```

use paratreet_bench::Args;
use paratreet_cachesim::{simulate_gravity, TraceConfig};
use paratreet_particles::gen;

fn fmt_count(v: u64) -> String {
    if v >= 1_000_000_000 {
        format!("{:.1}G", v as f64 / 1e9)
    } else if v >= 1_000_000 {
        format!("{:.1}M", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.1}K", v as f64 / 1e3)
    } else {
        format!("{v}")
    }
}

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 100_000);
    let seed = args.get_u64("seed", 2);

    let particles = gen::uniform_cube(n, seed, 1.0, 1.0);

    println!("TABLE II: simulated cache utilisation, gravity traversal of {n} particles");
    println!("(ParaTreeT / ChaNGa per cell; SKX-like hierarchy: L1D 32KB, L2 1MB, L3 33MB)\n");
    println!(
        "{:>4} {:>15} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "CPU",
        "Runtime (s)",
        "L1D Load",
        "L1D Store",
        "L1D ld-miss%",
        "L2 ld-miss%",
        "L3 ld-miss%",
        "St-miss(L1&2)%",
        "L3 st-miss%"
    );
    println!("{}", "-".repeat(120));

    for cpus in [1usize, 2, 4, 8, 16] {
        let a = simulate_gravity(particles.clone(), TraceConfig::paratreet(cpus));
        let b = simulate_gravity(particles.clone(), TraceConfig::changa(cpus));
        // "Store miss rate (L1D & L2)": stores missing both L1 and L2,
        // over all store accesses.
        let st_l12 = |r: &paratreet_cachesim::TraceResult| {
            if r.l1.store_accesses == 0 {
                0.0
            } else {
                r.l2.store_misses as f64 / r.l1.store_accesses as f64
            }
        };
        println!(
            "{:>4} {:>15} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}",
            cpus,
            format!("{:.2}/{:.2}", a.runtime, b.runtime),
            format!("{}/{}", fmt_count(a.l1.load_accesses), fmt_count(b.l1.load_accesses)),
            format!("{}/{}", fmt_count(a.l1.store_accesses), fmt_count(b.l1.store_accesses)),
            format!("{:.1}/{:.1}", a.l1.load_miss_rate() * 100.0, b.l1.load_miss_rate() * 100.0),
            format!("{:.1}/{:.1}", a.l2.load_miss_rate() * 100.0, b.l2.load_miss_rate() * 100.0),
            format!("{:.1}/{:.1}", a.l3.load_miss_rate() * 100.0, b.l3.load_miss_rate() * 100.0),
            format!("{:.2}/{:.2}", st_l12(&a) * 100.0, st_l12(&b) * 100.0),
            format!("{:.1}/{:.1}", a.l3.store_miss_rate() * 100.0, b.l3.store_miss_rate() * 100.0),
        );
    }
    println!();
    println!("paper shape: ParaTreeT runs faster at every CPU count with fewer");
    println!("L1D loads/stores (no per-bucket tree walk), at the price of higher");
    println!("miss rates; both scale with CPUs. Paper 1-CPU runtimes: 9.2s / 16s.");
}
