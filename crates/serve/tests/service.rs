//! End-to-end service tests: live writer + reader pool + load
//! generator, deterministic overload shedding, pinned-epoch replay,
//! and the `Framework` snapshot-hook publication path.

use paratreet_core::{Configuration, Framework, TreeMaintainer};
use paratreet_geometry::Vec3;
use paratreet_particles::{gen, Particle};
use paratreet_serve::{
    execute_batch, run_load, AdmissionPolicy, LoadConfig, Query, QueryService, Request,
    ServeConfig, ServeError, SnapshotRing, WriterConfig,
};
use paratreet_tree::{CountData, QueryScratch};
use rand::{SeedableRng, StdRng};
use std::sync::Arc;

fn config() -> Configuration {
    let mut config =
        Configuration { n_subtrees: 6, n_partitions: 4, bucket_size: 16, ..Default::default() };
    config.incremental.enabled = true;
    config
}

/// Deterministic small drift: id-hashed direction, fixed magnitude.
fn drift(particles: &mut [Particle], iteration: u64) {
    for p in particles.iter_mut() {
        let h = p.id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ iteration;
        p.pos.x += ((h & 0xFF) as f64 / 255.0 - 0.5) * 2e-3;
        p.pos.y += ((h >> 8 & 0xFF) as f64 / 255.0 - 0.5) * 2e-3;
        p.pos.z += ((h >> 16 & 0xFF) as f64 / 255.0 - 0.5) * 2e-3;
    }
}

#[test]
fn live_service_answers_everything_under_defer() {
    let cfg = config();
    let particles = gen::clustered(3000, 3, 17, 1.0, 1.0);
    let (maintainer, seed_trees) = TreeMaintainer::<CountData>::seed(&cfg, particles, false);
    let universe = maintainer.universe();

    let mut service: QueryService<CountData> = QueryService::new(ServeConfig {
        workers: 3,
        queue_capacity: 64,
        ring_capacity: 8,
        admission: AdmissionPolicy::Defer,
        ..ServeConfig::default()
    });
    service.spawn_writer(
        maintainer,
        seed_trees,
        Box::new(drift),
        WriterConfig { iterations: 40, pace: None },
    );

    let load = LoadConfig {
        clients: 120,
        queries_per_client: 25,
        threads: 4,
        batch: 16,
        k: 6,
        seed: 9,
        ..LoadConfig::default()
    };
    let report = run_load(&service, universe, &load);
    let expected = (load.clients * load.queries_per_client) as u64;
    assert_eq!(report.submitted, expected, "defer admission accepts everything");
    assert_eq!(report.completed, expected, "every accepted query is answered");
    assert_eq!(report.shed, 0);
    assert_eq!(report.per_class.iter().sum::<u64>(), expected);
    assert!(
        report.per_class.iter().all(|&n| n > 0),
        "mix hits every class: {:?}",
        report.per_class
    );

    let shutdown = service.shutdown();
    assert!(shutdown.is_clean(), "clean run joins cleanly: {shutdown:?}");
    let last = shutdown.last_epoch.expect("writer ran");
    assert!(last >= 1, "writer advanced at least once");
    let m = service.metrics();
    assert_eq!(m.get_u64("serve.queries.completed"), expected);
    assert_eq!(m.get_u64("serve.queries.shed"), 0);
    assert!(m.get_u64("serve.batches") > 0);
    assert!(m.get_u64("serve.snapshots.published") >= 2);
    // Latency summaries exist and are ordered for every class that saw
    // traffic.
    for class in ["knn", "ball", "range", "ray"] {
        let p50 = m.get_u64(&format!("serve.latency.{class}.p50"));
        let p99 = m.get_u64(&format!("serve.latency.{class}.p99"));
        let p999 = m.get_u64(&format!("serve.latency.{class}.p999"));
        assert!(p50 > 0, "{class} p50");
        assert!(p50 <= p99 && p99 <= p999, "{class} percentiles ordered");
    }
}

#[test]
fn shed_policy_rejects_deterministically_when_nothing_drains() {
    // Zero workers: the queue can only fill, so the first
    // `queue_capacity` batches are accepted and every later one must
    // come back Overloaded — no timing involved.
    let cfg = config();
    let particles = gen::uniform_cube(500, 3, 1.0, 1.0);
    let (maintainer, seed_trees) = TreeMaintainer::<CountData>::seed(&cfg, particles, false);
    let universe = maintainer.universe();

    let service: QueryService<CountData> = QueryService::new(ServeConfig {
        workers: 0,
        queue_capacity: 4,
        ring_capacity: 4,
        admission: AdmissionPolicy::Shed,
        ..ServeConfig::default()
    });
    service.publish(seed_trees, universe);

    let mk = |i: u32| vec![Request::new(i, 0, Query::Knn { pos: universe.center(), k: 4 })];
    for i in 0..4 {
        assert!(service.submit(mk(i), None).is_ok(), "batch {i} fits");
    }
    for i in 4..10 {
        match service.submit(mk(i), None) {
            Err(ServeError::Overloaded { depth, capacity }) => {
                assert_eq!(capacity, 4);
                assert_eq!(depth, 4);
            }
            other => panic!("batch {i}: expected Overloaded, got {other:?}"),
        }
    }
    let m = service.metrics();
    assert_eq!(m.get_u64("serve.queries.submitted"), 4);
    assert_eq!(m.get_u64("serve.queries.shed"), 6);
}

#[test]
fn submit_before_first_snapshot_is_not_ready() {
    let service: QueryService<CountData> =
        QueryService::new(ServeConfig { workers: 0, ..ServeConfig::default() });
    let req = vec![Request::new(0, 0, Query::Knn { pos: Vec3::ZERO, k: 1 })];
    assert_eq!(service.submit(req, None), Err(ServeError::NotReady));
}

/// Pinned-epoch replay: the same seeded request stream executed twice
/// against independently rebuilt (same-seed) snapshots is
/// bit-identical — across maintainers, services, and runs.
#[test]
fn pinned_epoch_replay_is_bit_identical_across_runs() {
    let run = || {
        let cfg = config();
        let particles = gen::clustered(2000, 3, 23, 1.0, 1.0);
        let (mut maintainer, seed_trees) =
            TreeMaintainer::<CountData>::seed(&cfg, particles, false);
        let universe = maintainer.universe();
        let ring: Arc<SnapshotRing<CountData>> = SnapshotRing::new(4);
        ring.publish(seed_trees, universe);
        // Advance a few epochs so the pin is on a maintained tree, not
        // the fresh seed.
        let mut master: Vec<Particle> = {
            let pin = ring.pin().unwrap();
            pin.trees.iter().flat_map(|t| t.particles.iter().copied()).collect()
        };
        for iteration in 1..=3u64 {
            drift(&mut master, iteration);
            let (trees, _) = maintainer.advance(std::mem::take(&mut master));
            master = trees.iter().flat_map(|t| t.particles.iter().copied()).collect();
            ring.publish(trees, maintainer.universe());
        }
        let pin = ring.pin().unwrap();
        assert_eq!(pin.epoch(), 3);
        let requests: Vec<Request> = (0..200)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(77 + i);
                Request::new(
                    i as u32,
                    0,
                    paratreet_serve::load::random_query(&mut rng, &universe, 5, &[1, 1, 1, 1]),
                )
            })
            .collect();
        let responses = execute_batch(&pin, &requests, &mut QueryScratch::default());
        responses
            .iter()
            .map(|r| (r.client, r.result.as_ref().expect("pure execution").checksum()))
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same snapshot, same bits");
}

/// A `Framework` with a snapshot hook publishes every step's forest:
/// the serving layer rides on a live simulation.
#[test]
fn framework_snapshot_hook_feeds_a_ring() {
    let ring: Arc<SnapshotRing<CountData>> = SnapshotRing::new(4);
    let hook_ring = Arc::clone(&ring);
    let particles = gen::uniform_cube(600, 5, 1.0, 1.0);
    let n = particles.len();

    // Incremental pipeline (the serving default).
    let mut fw: Framework<CountData> =
        Framework::new(config(), particles).with_snapshot_hook(move |epoch, trees, universe| {
            let published = hook_ring.publish(trees.to_vec(), universe);
            assert_eq!(published, epoch, "ring epochs track step epochs");
        });
    for step in 0..3 {
        fw.step(|_| {});
        let pin = ring.pin().expect("published");
        assert_eq!(pin.epoch(), step);
        assert_eq!(pin.n_particles(), n, "hook saw the whole forest");
        assert!(paratreet_tree::query::knn_query(&pin.trees, Vec3::ZERO, 3).len() == 3);
    }

    // Full-rebuild pipeline fires the same hook.
    let ring2: Arc<SnapshotRing<CountData>> = SnapshotRing::new(4);
    let hook_ring = Arc::clone(&ring2);
    let mut cfg = config();
    cfg.incremental.enabled = false;
    let mut fw: Framework<CountData> = Framework::new(cfg, gen::uniform_cube(300, 7, 1.0, 1.0))
        .with_snapshot_hook(move |_, trees, universe| {
            hook_ring.publish(trees.to_vec(), universe);
        });
    fw.step(|_| {});
    assert_eq!(ring2.head_epoch(), Some(0));
}

/// Satellite: the metrics schema is stable — every
/// `serve.latency.<class>` key (total, stage components, p999 exemplar)
/// is exported even for classes that received no traffic.
#[test]
fn metrics_schema_is_stable_with_zero_traffic() {
    let service: QueryService<CountData> =
        QueryService::new(ServeConfig { workers: 0, ..ServeConfig::default() });
    let m = service.metrics();
    for class in ["knn", "ball", "range", "ray"] {
        for stat in ["count", "mean", "p50", "p99", "p999", "max"] {
            assert!(
                m.contains(&format!("serve.latency.{class}.{stat}")),
                "missing serve.latency.{class}.{stat}"
            );
            for component in ["queue_wait", "pin_wait", "exec"] {
                assert!(
                    m.contains(&format!("serve.latency.{class}.{component}.{stat}")),
                    "missing serve.latency.{class}.{component}.{stat}"
                );
            }
        }
        for field in ["value", "request", "span"] {
            assert!(
                m.contains(&format!("serve.latency.{class}.p999_exemplar.{field}")),
                "missing serve.latency.{class}.p999_exemplar.{field}"
            );
        }
        assert_eq!(m.get_u64(&format!("serve.latency.{class}.count")), 0);
        // ISSUE 9 per-class overload counters and cost estimates.
        assert!(m.contains(&format!("serve.latency.{class}.deadline_exceeded")));
        assert!(m.contains(&format!("serve.latency.{class}.degraded")));
        assert!(m.contains(&format!("serve.cost.{class}.est_ns")));
    }
    // ISSUE 9 global overload / supervision keys are always exported,
    // zero or not, so dashboards and `--check` comparisons never miss.
    for key in [
        "serve.queries.completed_in_deadline",
        "serve.shed.depth",
        "serve.shed.predicted",
        "serve.deadline_exceeded",
        "serve.degraded",
        "serve.partial",
        "serve.degrade.level",
        "serve.degrade.transitions",
        "serve.worker.alive",
        "serve.worker.panics",
        "serve.worker.respawns",
        "serve.worker.quarantined",
        "serve.writer.state",
        "serve.stale_serving",
        "serve.staleness_epochs",
        "serve.queue.cost_ns",
        "serve.cost.observations",
    ] {
        assert!(m.contains(key), "missing {key}");
    }
}

/// Tentpole acceptance: with tracing attached, a p999 exemplar read off
/// the metrics resolves to a complete queued→admitted→pinned→executed→
/// responded span chain for a real request, and the stage component
/// histograms cover every completed query.
#[test]
fn traced_requests_leave_complete_span_chains() {
    use paratreet_telemetry::Telemetry;

    let cfg = config();
    let particles = gen::clustered(2000, 3, 21, 1.0, 1.0);
    let (maintainer, seed_trees) = TreeMaintainer::<CountData>::seed(&cfg, particles, false);
    let universe = maintainer.universe();

    let telemetry = Telemetry::wall(4);
    let mut service: QueryService<CountData> = QueryService::with_telemetry(
        ServeConfig { workers: 2, ..ServeConfig::default() },
        telemetry.clone(),
    );
    service.publish(seed_trees, universe);

    let load = LoadConfig {
        clients: 30,
        queries_per_client: 10,
        threads: 2,
        batch: 8,
        k: 4,
        seed: 5,
        ..LoadConfig::default()
    };
    let report = run_load(&service, universe, &load);
    assert_eq!(report.completed, 300);
    service.shutdown();

    let m = service.metrics();
    let trace = telemetry.drain();

    // Every completed query recorded a total and all three components.
    let mut totals = 0u64;
    for class in ["knn", "ball", "range", "ray"] {
        let count = m.get_u64(&format!("serve.latency.{class}.count"));
        totals += count;
        for component in ["queue_wait", "pin_wait", "exec"] {
            assert_eq!(
                m.get_u64(&format!("serve.latency.{class}.{component}.count")),
                count,
                "{class}.{component} covers every query"
            );
        }
    }
    assert_eq!(totals, 300);

    // Pick a class with traffic and resolve its p999 exemplar.
    let class = ["knn", "ball", "range", "ray"]
        .into_iter()
        .find(|c| m.get_u64(&format!("serve.latency.{c}.count")) > 0)
        .unwrap();
    let rid = m.get_u64(&format!("serve.latency.{class}.p999_exemplar.request"));
    let sid = m.get_u64(&format!("serve.latency.{class}.p999_exemplar.span"));
    assert!(sid > 0, "exemplar carries the root span id");

    let root = trace
        .spans
        .iter()
        .find(|s| s.link.id == Some(sid))
        .expect("exemplar span id resolves in the trace");
    assert_eq!(root.name, "request");
    assert_eq!(root.link.request, Some(rid));

    let children: Vec<&str> =
        trace.spans.iter().filter(|s| s.link.parent == Some(sid)).map(|s| s.name).collect();
    for stage in ["queued", "admitted", "pinned", "executed", "responded"] {
        assert!(children.contains(&stage), "chain missing {stage}: {children:?}");
    }
    // Stage spans nest inside the root (small slack for clock reads).
    for s in trace.spans.iter().filter(|s| s.link.parent == Some(sid)) {
        assert!(s.start_us + 1.0 >= root.start_us, "{} starts before root", s.name);
        assert!(
            s.start_us + s.dur_us <= root.start_us + root.dur_us + 1.0,
            "{} ends after root",
            s.name
        );
        assert_eq!(s.link.request, Some(rid));
    }
    // Every request left a chain, not just the exemplar.
    let roots = trace.spans.iter().filter(|s| s.name == "request").count();
    assert_eq!(roots, 300);
}
