//! Incremental tree maintenance: patch a built Subtree across iterations
//! instead of rebuilding it from scratch.
//!
//! ParaTreeT pays the full decomposition + build + leaf-sharing pipeline
//! every iteration even though particles move only slightly between
//! timesteps. An [`UpdatableTree`] is the mutable twin of a
//! [`BuiltTree`]: nodes live in a slab with a free list, leaves own
//! their buckets directly, and the update cycle is
//!
//! 1. [`UpdatableTree::resync`] — copy the integrated particle state
//!    back into the leaves (in DFS leaf order, the order
//!    [`UpdatableTree::flatten`] emits), marking a leaf *dirty* only
//!    when a position or mass actually changed,
//! 2. [`UpdatableTree::evict_escapees`] — remove particles that left
//!    their leaf's spatial footprint (the caller routes them: back into
//!    this subtree, into a sibling Subtree, or to a full rebuild),
//! 3. [`UpdatableTree::insert`] — sieve a particle from the subtree
//!    root down to its new leaf, materialising missing children with
//!    the same child-box/child-key rules the builder uses,
//! 4. [`UpdatableTree::repair`] — one bottom-up pass that splits
//!    overfull leaves (with the builder's own split rule), collapses
//!    underfull interiors, prunes emptied regions, and re-accumulates
//!    `Data` along dirty root paths only.
//!
//! [`UpdatableTree::flatten`] then reproduces the exact arena layout
//! [`crate::TreeBuilder`] emits (pre-order, children in ascending slot
//! order, buckets tiling the particle array in DFS order), so a
//! maintained tree drops into the cache/traversal pipeline unchanged —
//! and a zero-motion update round-trips bit-identically.

use crate::build::TreeBuilder;
use crate::node::{BuildNode, BuiltTree, NodeShape, NO_NODE};
use crate::{Data, TreeType};
use paratreet_geometry::{Axis, BoundingBox, NodeKey, Vec3};
use paratreet_particles::Particle;

/// Counters describing one update round of a single subtree. Summed by
/// the engine layer into the `tree.update.*` metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Particles whose position or mass changed since the last sync.
    pub n_moved: u64,
    /// Particles that left their leaf's bbox and were evicted.
    pub n_escaped: u64,
    /// Particles sieved into a leaf of this subtree.
    pub n_inserted: u64,
    /// Overfull leaves split by the repair pass.
    pub n_splits: u64,
    /// Underfull interior nodes collapsed back into leaves.
    pub n_merges: u64,
    /// Emptied child regions pruned from their parents.
    pub n_pruned: u64,
    /// Nodes whose `Data` summary was re-accumulated.
    pub n_refreshed: u64,
}

impl std::ops::AddAssign for UpdateStats {
    fn add_assign(&mut self, o: UpdateStats) {
        self.n_moved += o.n_moved;
        self.n_escaped += o.n_escaped;
        self.n_inserted += o.n_inserted;
        self.n_splits += o.n_splits;
        self.n_merges += o.n_merges;
        self.n_pruned += o.n_pruned;
        self.n_refreshed += o.n_refreshed;
    }
}

/// Structural kind of a maintained node. Unlike [`NodeShape`], leaves
/// own their bucket directly so membership edits are local.
enum UpdateShape {
    /// Interior node; `NO_NODE` marks absent children.
    Internal { children: [u32; 8] },
    /// Leaf owning its bucket.
    Leaf { particles: Vec<Particle> },
    /// A region with no particles.
    Empty,
}

/// One slab node of an [`UpdatableTree`].
struct UpdateNode<D> {
    key: NodeKey,
    bbox: BoundingBox,
    shape: UpdateShape,
    /// Depth below the subtree root (matches [`BuildNode::depth`]).
    depth: u32,
    data: D,
    n_particles: u32,
    /// Set when the bucket membership, particle state, or child set
    /// changed since the last repair; cleared by [`UpdatableTree::repair`].
    dirty: bool,
}

/// A mutable Subtree maintained across iterations. The root is always
/// slab index 0; freed slots are recycled through a free list.
pub struct UpdatableTree<D: Data> {
    tree_type: TreeType,
    bucket_size: usize,
    root_key: NodeKey,
    root_depth: u32,
    max_local_depth: u32,
    nodes: Vec<Option<UpdateNode<D>>>,
    free: Vec<u32>,
}

impl<D: Data> UpdatableTree<D> {
    /// Adopts a freshly built subtree. `root_depth` is the subtree
    /// root's depth below the global root (it drives k-d axis cycling,
    /// exactly as in [`TreeBuilder::root_depth`]).
    pub fn from_built(
        tree: &BuiltTree<D>,
        tree_type: TreeType,
        bucket_size: usize,
        root_depth: u32,
    ) -> UpdatableTree<D> {
        let bits = tree_type.bits_per_level();
        let root_key = tree.root().key;
        let mut t = UpdatableTree {
            tree_type,
            bucket_size,
            root_key,
            root_depth,
            // Same digit-capacity cap as the builder's `max_depth`.
            max_local_depth: (63 - root_key.level(bits) * bits) / bits,
            nodes: Vec::with_capacity(tree.nodes.len()),
            free: Vec::new(),
        };
        t.adopt(tree, 0);
        t
    }

    fn adopt(&mut self, tree: &BuiltTree<D>, i: u32) -> u32 {
        let src = tree.node(i);
        let slab = self.alloc(UpdateNode {
            key: src.key,
            bbox: src.bbox,
            shape: UpdateShape::Empty,
            depth: src.depth,
            data: src.data.clone(),
            n_particles: src.n_particles,
            dirty: false,
        });
        let shape = match src.shape {
            NodeShape::Leaf { .. } => UpdateShape::Leaf { particles: tree.bucket(i).to_vec() },
            NodeShape::Empty => UpdateShape::Empty,
            NodeShape::Internal => {
                let mut children = [NO_NODE; 8];
                for (slot, &c) in src.children.iter().enumerate() {
                    if c != NO_NODE {
                        children[slot] = self.adopt(tree, c);
                    }
                }
                UpdateShape::Internal { children }
            }
        };
        self.node_mut(slab).shape = shape;
        slab
    }

    fn alloc(&mut self, n: UpdateNode<D>) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Some(n);
                i
            }
            None => {
                self.nodes.push(Some(n));
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn release(&mut self, i: u32) {
        self.nodes[i as usize] = None;
        self.free.push(i);
    }

    fn node(&self, i: u32) -> &UpdateNode<D> {
        self.nodes[i as usize].as_ref().expect("live slab node")
    }

    fn node_mut(&mut self, i: u32) -> &mut UpdateNode<D> {
        self.nodes[i as usize].as_mut().expect("live slab node")
    }

    /// The subtree root's spatial footprint (the Subtree piece's region).
    pub fn root_bbox(&self) -> BoundingBox {
        self.node(0).bbox
    }

    /// The subtree root's path key.
    pub fn root_key(&self) -> NodeKey {
        self.root_key
    }

    /// Total particles currently held.
    pub fn n_particles(&self) -> u32 {
        self.node(0).n_particles
    }

    /// Live node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Maximum node depth below the subtree root.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().flatten().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Leaf slab indices in DFS (ascending child slot) order — the
    /// order buckets tile the flattened particle array.
    fn leaves_dfs(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![0u32];
        while let Some(i) = stack.pop() {
            match &self.node(i).shape {
                UpdateShape::Leaf { .. } => out.push(i),
                UpdateShape::Internal { children } => {
                    for &c in children.iter().rev() {
                        if c != NO_NODE {
                            stack.push(c);
                        }
                    }
                }
                UpdateShape::Empty => {}
            }
        }
        out
    }

    /// All particles in DFS bucket order (what [`Self::flatten`] emits).
    pub fn all_particles(&self) -> Vec<Particle> {
        let mut out = Vec::with_capacity(self.n_particles() as usize);
        self.collect(0, &mut out);
        out
    }

    fn collect(&self, i: u32, out: &mut Vec<Particle>) {
        match &self.node(i).shape {
            UpdateShape::Leaf { particles } => out.extend_from_slice(particles),
            UpdateShape::Internal { children } => {
                for &c in children.iter() {
                    if c != NO_NODE {
                        self.collect(c, out);
                    }
                }
            }
            UpdateShape::Empty => {}
        }
    }

    /// Copies integrated particle state back into the leaves. `master`
    /// must hold this subtree's particles in the order the last
    /// [`Self::flatten`] emitted them. Returns the number of particles
    /// whose position or mass changed; only their leaves go dirty, so a
    /// zero-motion resync leaves every summary untouched.
    pub fn resync(&mut self, master: &[Particle]) -> u64 {
        let mut off = 0usize;
        let mut moved = 0u64;
        for li in self.leaves_dfs() {
            let node = self.node_mut(li);
            let UpdateShape::Leaf { particles } = &mut node.shape else { unreachable!() };
            let slice = &master[off..off + particles.len()];
            off += particles.len();
            let mut dirty = node.dirty;
            for (dst, src) in particles.iter_mut().zip(slice) {
                if dst.pos != src.pos || dst.mass != src.mass {
                    dirty = true;
                    moved += 1;
                }
                *dst = *src;
            }
            node.dirty = dirty;
        }
        assert_eq!(off, master.len(), "resync: master slice does not match subtree population");
        moved
    }

    /// Removes every particle that left its leaf's bbox and returns
    /// them (in DFS leaf order). Only dirty leaves are scanned — clean
    /// leaves cannot have movers. The caller re-routes each escapee via
    /// [`Self::insert`] on whichever subtree now contains it.
    pub fn evict_escapees(&mut self) -> Vec<Particle> {
        let mut out = Vec::new();
        for li in self.leaves_dfs() {
            let node = self.node_mut(li);
            if !node.dirty {
                continue;
            }
            let bbox = node.bbox;
            let UpdateShape::Leaf { particles } = &mut node.shape else { unreachable!() };
            particles.retain(|p| {
                if bbox.contains(p.pos) {
                    true
                } else {
                    out.push(*p);
                    false
                }
            });
        }
        out
    }

    /// Sieves one particle from the subtree root to its leaf, creating
    /// a missing child (builder child-box/child-key rules) on the way.
    pub fn insert(&mut self, p: Particle) {
        let mut i = 0u32;
        loop {
            let children = match &self.node(i).shape {
                UpdateShape::Empty => {
                    let node = self.node_mut(i);
                    node.shape = UpdateShape::Leaf { particles: vec![p] };
                    node.dirty = true;
                    return;
                }
                UpdateShape::Leaf { .. } => {
                    let node = self.node_mut(i);
                    let UpdateShape::Leaf { particles } = &mut node.shape else { unreachable!() };
                    particles.push(p);
                    node.dirty = true;
                    return;
                }
                UpdateShape::Internal { children } => *children,
            };
            let (slot, child_bbox, child_key) = self.sieve_target(i, &children, p.pos);
            match children[slot] {
                NO_NODE => {
                    let depth = self.node(i).depth + 1;
                    let ci = self.alloc(UpdateNode {
                        key: child_key,
                        bbox: child_bbox,
                        shape: UpdateShape::Leaf { particles: vec![p] },
                        depth,
                        data: D::default(),
                        n_particles: 0,
                        dirty: true,
                    });
                    let node = self.node_mut(i);
                    let UpdateShape::Internal { children } = &mut node.shape else {
                        unreachable!()
                    };
                    children[slot] = ci;
                    node.dirty = true;
                    return;
                }
                c => i = c,
            }
        }
    }

    /// Which child slot of interior node `i` the position sieves into,
    /// plus that child's region box and key. Mirrors the builder's split
    /// assignment: octants tie toward the high side, planes send
    /// `pos < plane` low.
    fn sieve_target(
        &self,
        i: u32,
        children: &[u32; 8],
        pos: Vec3,
    ) -> (usize, BoundingBox, NodeKey) {
        let node = self.node(i);
        let bits = self.tree_type.bits_per_level();
        if self.tree_type == TreeType::Octree {
            let slot = node.bbox.octant_of(pos);
            return (slot, node.bbox.octant(slot), node.key.child(slot, bits));
        }
        let (axis, plane) = self.split_plane(i, children);
        let slot = if pos.component(axis.index()) < plane { 0 } else { 1 };
        let (lo, hi) = node.bbox.split_at(axis, plane);
        (slot, if slot == 0 { lo } else { hi }, node.key.child(slot, bits))
    }

    /// Recovers the split plane of a binary interior node. BinaryOct
    /// always splits at the spatial midpoint; k-d planes are recovered
    /// from a child's region box (the builder made child 0's high face —
    /// equivalently child 1's low face — the plane).
    fn split_plane(&self, i: u32, children: &[u32; 8]) -> (Axis, f64) {
        let node = self.node(i);
        let axis = match self.tree_type.cycling_axis(self.root_depth + node.depth) {
            Some(a) => a,
            None => node.bbox.longest_axis(),
        };
        if self.tree_type == TreeType::BinaryOct {
            return (axis, node.bbox.center().component(axis.index()));
        }
        if children[0] != NO_NODE {
            (axis, self.node(children[0]).bbox.hi.component(axis.index()))
        } else if children[1] != NO_NODE {
            (axis, self.node(children[1]).bbox.lo.component(axis.index()))
        } else {
            (axis, node.bbox.center().component(axis.index()))
        }
    }

    /// One bottom-up repair pass: splits overfull leaves, prunes
    /// emptied children, collapses underfull interiors, and
    /// re-accumulates `Data` and particle counts along dirty root paths
    /// only. Untouched subtrees are skipped entirely (and keep their
    /// summaries bit-for-bit).
    pub fn repair(&mut self) -> UpdateStats {
        let mut stats = UpdateStats::default();
        self.refresh(0, &mut stats);
        stats
    }

    /// Returns whether anything beneath (or at) `i` changed.
    fn refresh(&mut self, i: u32, stats: &mut UpdateStats) -> bool {
        enum Kind {
            Empty,
            Leaf(usize),
            Internal([u32; 8]),
        }
        let kind = match &self.node(i).shape {
            UpdateShape::Empty => Kind::Empty,
            UpdateShape::Leaf { particles } => Kind::Leaf(particles.len()),
            UpdateShape::Internal { children } => Kind::Internal(*children),
        };
        match kind {
            Kind::Empty => {
                let node = self.node_mut(i);
                let was = node.dirty;
                node.dirty = false;
                was
            }
            Kind::Leaf(len) => {
                if !self.node(i).dirty {
                    return false;
                }
                if len > self.bucket_size && self.node(i).depth < self.max_local_depth {
                    self.split_leaf(i, stats);
                    return self.refresh(i, stats);
                }
                // A leaf at the depth cap may stay oversize, exactly as
                // the builder leaves it for coincident particles.
                let (data, n) = {
                    let node = self.node(i);
                    let UpdateShape::Leaf { particles } = &node.shape else { unreachable!() };
                    (D::from_leaf(particles, &node.bbox), particles.len() as u32)
                };
                let node = self.node_mut(i);
                if n == 0 {
                    node.shape = UpdateShape::Empty;
                    node.data = D::default();
                } else {
                    node.data = data;
                }
                node.n_particles = n;
                node.dirty = false;
                stats.n_refreshed += 1;
                true
            }
            Kind::Internal(mut children) => {
                let mut any = self.node(i).dirty;
                for &c in &children {
                    if c != NO_NODE {
                        any |= self.refresh(c, stats);
                    }
                }
                if !any {
                    return false;
                }
                for ch in children.iter_mut() {
                    if *ch != NO_NODE && matches!(self.node(*ch).shape, UpdateShape::Empty) {
                        self.release(*ch);
                        *ch = NO_NODE;
                        stats.n_pruned += 1;
                    }
                }
                let total: u32 = children
                    .iter()
                    .filter(|&&c| c != NO_NODE)
                    .map(|&c| self.node(c).n_particles)
                    .sum();
                if total == 0 {
                    let node = self.node_mut(i);
                    node.shape = UpdateShape::Empty;
                    node.data = D::default();
                    node.n_particles = 0;
                    node.dirty = false;
                } else if (total as usize) <= self.bucket_size {
                    // Underfull interior: gather descendants (DFS slot
                    // order) back into one bucket.
                    let mut bucket = Vec::with_capacity(total as usize);
                    for &c in &children {
                        if c != NO_NODE {
                            self.collect(c, &mut bucket);
                            self.release_subtree(c);
                        }
                    }
                    let bbox = self.node(i).bbox;
                    let data = D::from_leaf(&bucket, &bbox);
                    let node = self.node_mut(i);
                    node.shape = UpdateShape::Leaf { particles: bucket };
                    node.data = data;
                    node.n_particles = total;
                    node.dirty = false;
                    stats.n_merges += 1;
                } else {
                    let mut data = D::default();
                    for &c in &children {
                        if c != NO_NODE {
                            data.merge(&self.node(c).data);
                        }
                    }
                    let node = self.node_mut(i);
                    node.shape = UpdateShape::Internal { children };
                    node.data = data;
                    node.n_particles = total;
                    node.dirty = false;
                }
                stats.n_refreshed += 1;
                true
            }
        }
    }

    /// Splits an overfull leaf with the builder's own split rule, so
    /// maintained structure matches what a fresh build would produce.
    fn split_leaf(&mut self, i: u32, stats: &mut UpdateStats) {
        let (mut particles, bbox, key, depth) = {
            let node = self.node_mut(i);
            let UpdateShape::Leaf { particles } = &mut node.shape else { unreachable!() };
            (std::mem::take(particles), node.bbox, node.key, node.depth)
        };
        let builder = TreeBuilder {
            tree_type: self.tree_type,
            bucket_size: self.bucket_size,
            parallel: false,
            root_key: self.root_key,
            root_depth: self.root_depth,
        };
        let groups = builder.split(&mut particles, &bbox, key, self.root_depth + depth);
        let mut children = [NO_NODE; 8];
        let mut rest = particles;
        for (slot, len, child_bbox, child_key) in groups {
            let tail = rest.split_off(len);
            let bucket = std::mem::replace(&mut rest, tail);
            let n = bucket.len() as u32;
            children[slot] = self.alloc(UpdateNode {
                key: child_key,
                bbox: child_bbox,
                shape: UpdateShape::Leaf { particles: bucket },
                depth: depth + 1,
                data: D::default(),
                n_particles: n,
                dirty: true,
            });
        }
        debug_assert!(rest.is_empty());
        let node = self.node_mut(i);
        node.shape = UpdateShape::Internal { children };
        node.dirty = true;
        stats.n_splits += 1;
    }

    fn release_subtree(&mut self, i: u32) {
        if let UpdateShape::Internal { children } = &self.node(i).shape {
            let children = *children;
            for c in children {
                if c != NO_NODE {
                    self.release_subtree(c);
                }
            }
        }
        self.release(i);
    }

    /// Emits the arena form for the cache/traversal pipeline,
    /// reproducing [`TreeBuilder`]'s exact layout: pre-order with
    /// children in ascending slot order and leaf buckets tiling the
    /// particle array in DFS order. A zero-motion
    /// resync→repair→flatten round trip is bit-identical to the
    /// original build.
    pub fn flatten(&self) -> BuiltTree<D> {
        let mut nodes = Vec::with_capacity(self.n_nodes());
        let mut particles = Vec::with_capacity(self.n_particles() as usize);
        self.flatten_rec(0, &mut nodes, &mut particles);
        BuiltTree { nodes, particles, bits_per_level: self.tree_type.bits_per_level() }
    }

    fn flatten_rec(&self, i: u32, out: &mut Vec<BuildNode<D>>, parts: &mut Vec<Particle>) -> u32 {
        let n = self.node(i);
        let idx = out.len();
        out.push(BuildNode {
            key: n.key,
            bbox: n.bbox,
            shape: NodeShape::Empty,
            children: [NO_NODE; 8],
            data: n.data.clone(),
            n_particles: n.n_particles,
            depth: n.depth,
        });
        match &n.shape {
            UpdateShape::Leaf { particles } => {
                let start = parts.len() as u32;
                parts.extend_from_slice(particles);
                out[idx].shape = NodeShape::Leaf { start, end: start + particles.len() as u32 };
            }
            UpdateShape::Internal { children } => {
                out[idx].shape = NodeShape::Internal;
                for (slot, &c) in children.iter().enumerate() {
                    if c != NO_NODE {
                        let ci = self.flatten_rec(c, out, parts);
                        out[idx].children[slot] = ci;
                    }
                }
            }
            UpdateShape::Empty => {}
        }
        idx as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountData;
    use paratreet_particles::{gen, ParticleVec};

    fn built(tree_type: TreeType, n: usize, bucket: usize) -> BuiltTree<CountData> {
        let ps = gen::uniform_cube(n, 42, 1.0, 1.0);
        let bbox = ps.bounding_box().padded(1e-9);
        let bbox = if tree_type == TreeType::Octree { bbox.bounding_cube() } else { bbox };
        TreeBuilder::new(tree_type).bucket_size(bucket).build(ps, bbox)
    }

    fn assert_arena_identical(a: &BuiltTree<CountData>, b: &BuiltTree<CountData>) {
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.children, y.children);
            assert_eq!(x.n_particles, y.n_particles);
            assert_eq!(x.depth, y.depth);
            assert_eq!(x.data, y.data);
            assert_eq!(x.bbox.lo, y.bbox.lo);
            assert_eq!(x.bbox.hi, y.bbox.hi);
        }
        assert_eq!(a.particles, b.particles);
    }

    #[test]
    fn adopt_flatten_round_trips_bit_identically() {
        for tt in [TreeType::Octree, TreeType::KdTree, TreeType::BinaryOct, TreeType::LongestDim] {
            let t = built(tt, 700, 8);
            let u = UpdatableTree::from_built(&t, tt, 8, 0);
            assert_arena_identical(&t, &u.flatten());
        }
    }

    #[test]
    fn zero_motion_update_is_bit_identical() {
        let t = built(TreeType::Octree, 900, 8);
        let mut u = UpdatableTree::from_built(&t, TreeType::Octree, 8, 0);
        let mut master = t.particles.clone();
        // Accumulator churn (forces written back) must not dirty anything.
        for p in &mut master {
            p.acc = Vec3::new(1.0, 2.0, 3.0);
            p.potential = -4.0;
        }
        assert_eq!(u.resync(&master), 0);
        let escaped = u.evict_escapees();
        assert!(escaped.is_empty());
        let stats = u.repair();
        assert_eq!(stats, UpdateStats::default());
        let flat = u.flatten();
        assert_eq!(flat.particles, master);
        assert_eq!(flat.nodes.len(), t.nodes.len());
        for (x, y) in flat.nodes.iter().zip(&t.nodes) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.data, y.data);
        }
    }

    #[test]
    fn motion_update_keeps_tree_valid_and_conserves_particles() {
        let t = built(TreeType::Octree, 1200, 8);
        let universe = t.root().bbox;
        let mut u = UpdatableTree::from_built(&t, TreeType::Octree, 8, 0);
        let mut master = t.particles.clone();
        // Swirl particles around the box centre; clamp inside the root.
        let c = universe.center();
        for (i, p) in master.iter_mut().enumerate() {
            let r = p.pos - c;
            let scale = if i % 3 == 0 { 0.9 } else { 1.04 };
            p.pos = c + r * scale;
            for a in 0..3 {
                let lo = universe.lo.component(a);
                let hi = universe.hi.component(a);
                let v = p.pos.component(a).clamp(lo, hi);
                match a {
                    0 => p.pos.x = v,
                    1 => p.pos.y = v,
                    _ => p.pos.z = v,
                }
            }
        }
        let moved = u.resync(&master);
        assert!(moved > 0);
        let escaped = u.evict_escapees();
        assert!(!escaped.is_empty(), "swirl should evict some particles");
        for p in escaped {
            assert!(universe.contains(p.pos));
            u.insert(p);
        }
        let stats = u.repair();
        assert!(stats.n_refreshed > 0);
        let flat = u.flatten();
        assert_eq!(flat.particles.len(), master.len());
        flat.validate(8).unwrap();
        // Every node's count doubles as CountData: still consistent.
        for n in &flat.nodes {
            assert_eq!(n.data.count, n.n_particles as u64);
        }
    }

    #[test]
    fn inserts_split_overfull_leaves() {
        let ps = gen::uniform_cube(64, 7, 1.0, 1.0);
        let bbox = ps.bounding_box().padded(1e-9).bounding_cube();
        let t: BuiltTree<CountData> =
            TreeBuilder::new(TreeType::Octree).bucket_size(8).build(ps, bbox);
        let mut u = UpdatableTree::from_built(&t, TreeType::Octree, 8, 0);
        let extra = gen::uniform_cube(64, 9, 1.0, 1.0);
        let root = u.root_bbox();
        for mut p in extra {
            p.id += 10_000;
            p.pos.x = p.pos.x.clamp(root.lo.x, root.hi.x);
            p.pos.y = p.pos.y.clamp(root.lo.y, root.hi.y);
            p.pos.z = p.pos.z.clamp(root.lo.z, root.hi.z);
            u.insert(p);
        }
        let stats = u.repair();
        assert!(stats.n_splits > 0, "doubling the population must split leaves");
        let flat = u.flatten();
        assert_eq!(flat.particles.len(), 128);
        flat.validate(8).unwrap();
    }

    #[test]
    fn evictions_merge_underfull_interiors() {
        let t = built(TreeType::KdTree, 512, 8);
        let mut u = UpdatableTree::from_built(&t, TreeType::KdTree, 8, 0);
        // Move 7 of every 8 particles to one corner: most of the tree
        // drains and interiors collapse.
        let corner = t.root().bbox.lo;
        let mut master = t.particles.clone();
        for (i, p) in master.iter_mut().enumerate() {
            if i % 8 != 0 {
                p.pos = corner + Vec3::splat(1e-6 * (i as f64 + 1.0));
            }
        }
        u.resync(&master);
        let escaped = u.evict_escapees();
        for p in escaped {
            u.insert(p);
        }
        let stats = u.repair();
        assert!(stats.n_merges + stats.n_pruned > 0, "drained regions must collapse");
        let flat = u.flatten();
        assert_eq!(flat.particles.len(), 512);
        flat.validate(8).unwrap();
    }
}
