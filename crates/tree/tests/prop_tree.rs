//! Property-based invariants for tree construction.
//!
//! These are the invariants the cache and traversal layers rely on: every
//! build reorders but never loses particles, leaves tile the particle
//! array, node boxes contain their particles, and `Data` accumulation
//! from leaves to root equals direct extraction over the whole set.

use paratreet_geometry::Vec3;
use paratreet_particles::{Particle, ParticleVec};
use paratreet_tree::{CountData, TreeBuilder, TreeType};
use proptest::prelude::*;

fn arb_particles() -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0), 1..300).prop_map(
        |pts| {
            pts.into_iter()
                .enumerate()
                .map(|(i, (x, y, z))| Particle::point_mass(i as u64, 1.0, Vec3::new(x, y, z)))
                .collect()
        },
    )
}

fn arb_tree_type() -> impl Strategy<Value = TreeType> {
    prop_oneof![
        Just(TreeType::Octree),
        Just(TreeType::KdTree),
        Just(TreeType::LongestDim),
        Just(TreeType::BinaryOct)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn build_is_valid_for_any_input(
        ps in arb_particles(),
        tree_type in arb_tree_type(),
        bucket in 1usize..32,
    ) {
        let bbox = ps.bounding_box().padded(1e-9);
        let bbox = if matches!(tree_type, TreeType::Octree | TreeType::BinaryOct) {
            bbox.bounding_cube()
        } else {
            bbox
        };
        let n = ps.len();
        let t = TreeBuilder::new(tree_type)
            .bucket_size(bucket)
            .build::<CountData>(ps, bbox);
        prop_assert!(t.validate(usize::MAX).is_ok(), "{:?}", t.validate(usize::MAX));
        prop_assert_eq!(t.root().n_particles as usize, n);
        prop_assert_eq!(t.root().data.count as usize, n);
    }

    #[test]
    fn no_particle_is_lost_or_duplicated(
        ps in arb_particles(),
        tree_type in arb_tree_type(),
    ) {
        let bbox = ps.bounding_box().padded(1e-9);
        let bbox = if tree_type == TreeType::Octree { bbox.bounding_cube() } else { bbox };
        let mut ids_before: Vec<u64> = ps.iter().map(|p| p.id).collect();
        ids_before.sort_unstable();
        let t = TreeBuilder::new(tree_type).bucket_size(8).build::<CountData>(ps, bbox);
        let mut ids_after: Vec<u64> = t.particles.iter().map(|p| p.id).collect();
        ids_after.sort_unstable();
        prop_assert_eq!(ids_before, ids_after);
    }

    #[test]
    fn leaf_buckets_partition_particles(
        ps in arb_particles(),
        tree_type in arb_tree_type(),
        bucket in 1usize..16,
    ) {
        let bbox = ps.bounding_box().padded(1e-9);
        let bbox = if tree_type == TreeType::Octree { bbox.bounding_cube() } else { bbox };
        let t = TreeBuilder::new(tree_type).bucket_size(bucket).build::<CountData>(ps, bbox);
        let mut covered = 0usize;
        for l in t.leaf_indices() {
            let r = t.node(l).bucket_range().unwrap();
            prop_assert_eq!(r.start, covered);
            covered = r.end;
        }
        prop_assert_eq!(covered, t.particles.len());
    }

    #[test]
    fn node_boxes_nest(
        ps in arb_particles(),
        tree_type in arb_tree_type(),
    ) {
        let bbox = ps.bounding_box().padded(1e-9);
        let bbox = if tree_type == TreeType::Octree { bbox.bounding_cube() } else { bbox };
        let t = TreeBuilder::new(tree_type).bucket_size(8).build::<CountData>(ps, bbox);
        let mut stack = vec![0u32];
        while let Some(i) = stack.pop() {
            let n = t.node(i);
            for c in n.child_indices() {
                let child = t.node(c);
                // Child boxes are contained in a *small tolerance* blowup
                // of the parent (split planes are exact, so this should
                // hold exactly; tolerance guards FP in padded boxes).
                prop_assert!(n.bbox.padded(1e-12).contains_box(&child.bbox));
                stack.push(c);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential(
        ps in arb_particles(),
        tree_type in arb_tree_type(),
    ) {
        let bbox = ps.bounding_box().padded(1e-9);
        let bbox = if tree_type == TreeType::Octree { bbox.bounding_cube() } else { bbox };
        let a = TreeBuilder::new(tree_type).parallel(false).build::<CountData>(ps.clone(), bbox);
        let b = TreeBuilder::new(tree_type).parallel(true).build::<CountData>(ps, bbox);
        prop_assert_eq!(a.nodes.len(), b.nodes.len());
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            prop_assert_eq!(x.key, y.key);
            prop_assert_eq!(x.n_particles, y.n_particles);
        }
    }
}
