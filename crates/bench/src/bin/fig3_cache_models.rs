//! Figure 3: the software-cache model comparison.
//!
//! "Comparison of our shared memory cache 'WaitFree' against a
//! single-threaded model 'Sequential' and an exclusive-write model
//! 'XWrite' when performing Barnes-Hut gravity calculations on 80m
//! particles... executed on Stampede2 with 24 cores to a process."
//!
//! This harness runs the same experiment on the machine model: a
//! clustered dataset, monopole+quadrupole Barnes-Hut, Stampede2
//! processes of 24 workers, sweeping the total core count, for the
//! three cache models. The paper's shape: XWrite degrades first
//! (~1,536 cores), Sequential later (~6,144), WaitFree keeps scaling.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin fig3_cache_models -- \
//!     --particles 60000 --max-procs 256
//! ```

use paratreet_apps::gravity::GravityVisitor;
use paratreet_bench::{fmt_seconds, Args};
use paratreet_core::{CacheModel, Configuration, DistributedEngine, TraversalKind};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 40_000);
    let seed = args.get_u64("seed", 3);
    let theta = args.get_f64("theta", 0.7);
    let max_procs = args.get_usize("max-procs", 256);

    // The paper's dataset is clustered — that is what stresses the cache.
    let particles = gen::clustered(n, 8, seed, 1.0, 1.0);
    let visitor = GravityVisitor { theta, g: 1.0 };

    println!("Figure 3: average gravity traversal time vs cores, {n} clustered particles");
    println!("(Stampede2 machine model, 24 workers per process)\n");
    println!(
        "{:>7} {:>7} {:>12} {:>12} {:>12}",
        "procs", "cores", "WaitFree", "XWrite", "Sequential"
    );
    println!("{}", "-".repeat(56));

    let mut procs = 1;
    while procs <= max_procs {
        let mut cells = vec![format!("{procs}"), format!("{}", procs * 24)];
        for model in [CacheModel::WaitFree, CacheModel::XWrite, CacheModel::PerThread] {
            let config = Configuration { bucket_size: 16, ..Default::default() };
            let engine = DistributedEngine::new(
                MachineSpec::stampede2_24(procs),
                config,
                model,
                TraversalKind::TopDown,
                &visitor,
            );
            let rep = engine.run_iteration(particles.clone());
            let traversal = rep.makespan - rep.traversal_start;
            cells.push(fmt_seconds(traversal));
        }
        println!(
            "{:>7} {:>7} {:>12} {:>12} {:>12}",
            cells[0], cells[1], cells[2], cells[3], cells[4]
        );
        procs *= 2;
    }
    println!();
    println!("paper shape: XWrite scaling degrades ~1,536 cores; Sequential ~6,144;");
    println!("WaitFree continues to scale. Traversal time only (build excluded).");
}
