//! Structured errors for the fetch → serialize → fill → resume pipeline.
//!
//! The error-handling contract of this crate (see also DESIGN.md):
//!
//! * **Recoverable conditions return [`CacheError`]** — malformed or
//!   truncated fill payloads, fills whose splice point is not
//!   materialised yet (orphans), and fetches for keys the home rank
//!   cannot locate. Engines log these and degrade to a re-request; they
//!   must never abort a simulation.
//! * **Programming errors panic** — API misuse that no message can
//!   trigger, such as calling [`crate::CacheTree::init`] with duplicate
//!   subtree summaries or grafting a tree whose first node is not its
//!   root. These stay `assert!`/`debug_assert!`.
//!
//! Every variant carries enough context to be logged without access to
//! the failing payload.

use paratreet_geometry::NodeKey;

/// Why a cache operation was rejected. All variants are recoverable:
/// the cache's state is unchanged (failed operations are atomic — they
/// validate before they mutate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A fill payload failed to decode (truncated, bad magic, or an
    /// inconsistent node table).
    MalformedFragment {
        /// Payload size, for log correlation.
        len: usize,
    },
    /// A fill payload decoded to zero nodes.
    EmptyFragment,
    /// A fill arrived for a subtree whose parent is not materialised on
    /// this rank, so there is nowhere to splice it. Seen when faults
    /// reorder a fill ahead of the fill that creates its splice point.
    OrphanFill {
        /// Root key of the orphaned fragment.
        key: NodeKey,
    },
    /// A fetch asked this rank to serialise a key it cannot locate
    /// (not in the hash table and not reachable from the root).
    UnknownKey {
        /// The key the requester asked for.
        key: NodeKey,
    },
    /// The cache has no root yet ([`crate::CacheTree::init`] has not
    /// run), so nothing can be located or spliced.
    NotInitialized,
    /// A fill was encoded under an older recovery epoch than the cache
    /// is currently in: its contents may predate a rank crash, so it is
    /// rejected before any splice and the requester re-fetches.
    StaleEpoch {
        /// Epoch stamped into the fill's wire header.
        fill_epoch: u32,
        /// The receiving cache's current epoch.
        cache_epoch: u32,
    },
    /// The operation targeted a cache whose rank has crashed and will
    /// not return (crash-stop, re-shard recovery). Requests must be
    /// re-routed to the subtree's new owner.
    OwnerDead {
        /// The dead rank.
        rank: u32,
    },
    /// A fill payload carried no epoch header (pre-epoch wire format).
    /// Legacy payloads cannot be proven fresh, so they are rejected
    /// with a structured error rather than decoded as garbage.
    LegacyFragment {
        /// Payload size, for log correlation.
        len: usize,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::MalformedFragment { len } => {
                write!(f, "malformed fill fragment ({len} bytes)")
            }
            CacheError::EmptyFragment => write!(f, "empty fill fragment"),
            CacheError::OrphanFill { key } => {
                write!(f, "fill for {key} has no materialised parent to splice into")
            }
            CacheError::UnknownKey { key } => {
                write!(f, "no node for key {key} on this rank")
            }
            CacheError::NotInitialized => write!(f, "cache has no root (init not called)"),
            CacheError::StaleEpoch { fill_epoch, cache_epoch } => {
                write!(f, "stale fill from epoch {fill_epoch} rejected in epoch {cache_epoch}")
            }
            CacheError::OwnerDead { rank } => {
                write!(f, "rank {rank} has crashed and will not return")
            }
            CacheError::LegacyFragment { len } => {
                write!(f, "legacy (pre-epoch) fill fragment ({len} bytes) rejected")
            }
        }
    }
}

impl std::error::Error for CacheError {}
