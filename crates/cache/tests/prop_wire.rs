//! Property tests for the fill wire protocol: round-trips preserve
//! structure, and arbitrary bytes never panic the decoder (fills arrive
//! from the network; a malformed fill must be an error, not a crash).

use paratreet_cache::wire::{decode_fragment, encode_fragment, HEADER_BYTES};
use paratreet_cache::{CacheError, CacheNode, NodeKind};
use paratreet_geometry::{BoundingBox, NodeKey, Vec3, ROOT_KEY};
use paratreet_particles::Particle;
use paratreet_tree::CountData;
use proptest::prelude::*;
use std::sync::atomic::Ordering;

/// Builds a random small tree of boxed cache nodes from a recursive
/// shape description; returns all nodes (root first).
#[allow(clippy::vec_box)] // mirrors the cache's boxed-node storage
fn build_tree(shape: &Shape, key: NodeKey, nodes: &mut Vec<Box<CacheNode<CountData>>>) -> usize {
    let b = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
    match shape {
        Shape::Leaf(n) => {
            let ps: Vec<Particle> =
                (0..*n).map(|i| Particle::point_mass(i as u64, 1.0, Vec3::splat(0.5))).collect();
            nodes.push(Box::new(CacheNode::new(
                key,
                b,
                *n as u32,
                CountData { count: *n as u64 },
                2,
                NodeKind::Leaf,
                ps,
            )));
            nodes.len() - 1
        }
        Shape::Empty => {
            nodes.push(Box::new(CacheNode::new(
                key,
                b,
                0,
                CountData::default(),
                2,
                NodeKind::Empty,
                vec![],
            )));
            nodes.len() - 1
        }
        Shape::Internal(children) => {
            nodes.push(Box::new(CacheNode::new(
                key,
                b,
                0,
                CountData::default(),
                2,
                NodeKind::Internal,
                vec![],
            )));
            let my = nodes.len() - 1;
            let mut total = 0u32;
            for (slot, child) in children.iter().enumerate().take(8) {
                if let Some(c) = child {
                    let ci = build_tree(c, key.child(slot, 3), nodes);
                    total += nodes[ci].n_particles;
                    let ptr = &*nodes[ci] as *const _ as *mut CacheNode<CountData>;
                    nodes[my].children[slot].store(ptr, Ordering::Relaxed);
                }
            }
            nodes[my].n_particles = total;
            nodes[my].data = CountData { count: total as u64 };
            my
        }
    }
}

#[derive(Clone, Debug)]
enum Shape {
    Leaf(usize),
    Empty,
    Internal(Vec<Option<Shape>>),
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    let leaf = prop_oneof![(0usize..10).prop_map(Shape::Leaf), Just(Shape::Empty),];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop::collection::vec(prop::option::of(inner), 1..4).prop_map(Shape::Internal)
    })
}

/// Collects (key, kind, n_particles) of the reachable tree for
/// structural comparison.
fn fingerprint(node: &CacheNode<CountData>, out: &mut Vec<(u64, u8, u32, usize)>) {
    let kind = match node.kind {
        NodeKind::Internal => 0,
        NodeKind::Leaf => 1,
        NodeKind::Empty => 2,
        NodeKind::Placeholder => 3,
    };
    out.push((node.key.raw(), kind, node.n_particles, node.particles.len()));
    for c in node.children_iter(8) {
        fingerprint(c, out);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_preserves_structure_and_epoch(shape in arb_shape(), epoch in any::<u32>()) {
        let mut nodes = Vec::new();
        build_tree(&shape, ROOT_KEY, &mut nodes);
        let root = &nodes[0];
        let bytes = encode_fragment(root, 16, epoch);
        let frag = decode_fragment::<CountData>(&bytes).expect("well-formed fragment");
        prop_assert_eq!(frag.epoch, epoch, "epoch must survive the wire");
        let mut a = Vec::new();
        fingerprint(root, &mut a);
        let mut b = Vec::new();
        fingerprint(&frag.nodes[0], &mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn depth_limited_roundtrip_never_exceeds_depth(shape in arb_shape(), depth in 0u32..3) {
        let mut nodes = Vec::new();
        build_tree(&shape, ROOT_KEY, &mut nodes);
        let bytes = encode_fragment(&nodes[0], depth, 0);
        let frag = decode_fragment::<CountData>(&bytes).expect("well-formed fragment");
        // No decoded node sits deeper than `depth` below the root.
        for n in &frag.nodes {
            prop_assert!(n.key.level(3) <= depth);
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Must return Ok or Err, never crash.
        let _ = decode_fragment::<CountData>(&bytes);
    }

    #[test]
    fn truncations_of_valid_fragments_are_rejected(shape in arb_shape(), cut_frac in 0.0f64..1.0) {
        let mut nodes = Vec::new();
        build_tree(&shape, ROOT_KEY, &mut nodes);
        let bytes = encode_fragment(&nodes[0], 16, 3);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode_fragment::<CountData>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn bitflips_never_panic(shape in arb_shape(), flip_byte in 0usize..256, flip_bit in 0u8..8) {
        let mut nodes = Vec::new();
        build_tree(&shape, ROOT_KEY, &mut nodes);
        let mut bytes = encode_fragment(&nodes[0], 16, 3);
        if !bytes.is_empty() {
            let i = flip_byte % bytes.len();
            bytes[i] ^= 1 << flip_bit;
            let _ = decode_fragment::<CountData>(&bytes); // no panic
        }
    }

    #[test]
    fn legacy_headerless_payloads_yield_structured_errors(shape in arb_shape()) {
        // A pre-epoch payload is exactly a v2 payload with the header
        // stripped: it must surface as LegacyFragment (or, when shorter
        // than any header could be, MalformedFragment), never decode.
        let mut nodes = Vec::new();
        build_tree(&shape, ROOT_KEY, &mut nodes);
        let bytes = encode_fragment(&nodes[0], 16, 1);
        let legacy = &bytes[HEADER_BYTES..];
        match decode_fragment::<CountData>(legacy) {
            Err(CacheError::LegacyFragment { len }) => prop_assert_eq!(len, legacy.len()),
            Err(CacheError::MalformedFragment { .. }) => prop_assert!(legacy.len() < HEADER_BYTES),
            Err(e) => prop_assert!(false, "unexpected error {}", e),
            Ok(_) => prop_assert!(false, "legacy payload decoded"),
        }
    }

    #[test]
    fn wrong_wire_versions_are_rejected(shape in arb_shape(), version in any::<u8>()) {
        let mut nodes = Vec::new();
        build_tree(&shape, ROOT_KEY, &mut nodes);
        let mut bytes = encode_fragment(&nodes[0], 16, 1);
        if version != bytes[4] {
            bytes[4] = version;
            prop_assert_eq!(
                decode_fragment::<CountData>(&bytes).err(),
                Some(CacheError::MalformedFragment { len: bytes.len() })
            );
        }
    }
}
