//! Figure 9: time profile of CPU utilisation during the parallel
//! Barnes-Hut traversal.
//!
//! The paper shows a *Projections* timeline on 1536 Stampede2 CPUs:
//! low-utilisation share-top-levels at the start, a large block of
//! node-local traversals, then cache requests/insertions and traversal
//! resumptions as the iteration drains. This harness prints the same
//! profile from the machine model's per-phase ledger: one row per time
//! bin, one bar per phase group.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin fig9_time_profile -- \
//!     --particles 60000 --procs 64
//! ```

use paratreet_apps::gravity::GravityVisitor;
use paratreet_bench::{bar, fmt_seconds, harness_telemetry, write_telemetry_outputs, Args};
use paratreet_core::{CacheModel, Configuration, DistributedEngine, TraversalKind};
use paratreet_particles::gen;
use paratreet_runtime::{MachineSpec, Phase};
use paratreet_telemetry::Json;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 40_000);
    let seed = args.get_u64("seed", 9);
    let procs = args.get_usize("procs", 64); // 64 × 24 = 1536 CPUs
    let bins = args.get_usize("bins", 24);
    let json = args.get_bool("json", false);

    let particles = gen::uniform_cube(n, seed, 1.0, 1.0);
    let visitor = GravityVisitor::default();
    let telemetry = harness_telemetry(&args, true);
    let engine = DistributedEngine::new(
        MachineSpec::stampede2_24(procs),
        Configuration { bucket_size: 16, ..Default::default() },
        CacheModel::WaitFree,
        TraversalKind::TopDown,
        &visitor,
    )
    .with_telemetry(telemetry.clone());
    let rep = engine.run_iteration(particles);
    let workers = procs * 24;
    let profile = rep.ledger.profile(bins, workers);
    let horizon = rep.ledger.horizon();

    write_telemetry_outputs(&args, &telemetry, Some(&rep.metrics));

    if json {
        // One machine-readable object: the metrics registry plus the
        // binned profile (per bin: per-phase fraction of capacity).
        let mut doc = Json::obj();
        doc.push("figure", Json::Str("fig9_time_profile".to_string()));
        doc.push("particles", Json::U64(n as u64));
        doc.push("workers", Json::U64(workers as u64));
        doc.push("bin_seconds", Json::F64(horizon / bins.max(1) as f64));
        doc.push("metrics", rep.metrics.to_json());
        let rows = profile
            .iter()
            .map(|slice| {
                let mut row = Json::obj();
                for p in Phase::ALL {
                    row.push(p.label(), Json::F64(slice[p.index()]));
                }
                row
            })
            .collect();
        doc.push("profile", Json::Arr(rows));
        println!("{doc}");
        return;
    }

    println!("Figure 9: utilisation profile, Barnes-Hut on {} CPUs, {n} particles", workers);
    println!(
        "(each row is one time bin of {}; bars are fraction of capacity)\n",
        fmt_seconds(horizon / bins as f64)
    );

    // Group phases like the paper's legend.
    let groups: [(&str, &[Phase]); 5] = [
        (
            "setup (decomp+build+share)",
            &[Phase::Decomposition, Phase::TreeBuild, Phase::LeafSharing, Phase::ShareTopLevels],
        ),
        ("local traversal", &[Phase::LocalTraversal]),
        ("cache req+fill", &[Phase::CacheRequest, Phase::FillServe]),
        ("cache insertion", &[Phase::CacheInsertion]),
        ("resume+remote trav", &[Phase::TraversalResumption, Phase::RemoteTraversal]),
    ];

    println!(
        "{:>5} {:>6} | {}",
        "bin",
        "util",
        groups.iter().map(|(name, _)| format!("{name:<28}")).collect::<Vec<_>>().join("")
    );
    for (i, slice) in profile.iter().enumerate() {
        let total: f64 = slice.iter().sum();
        let mut cells = Vec::new();
        for (_, phases) in &groups {
            let frac: f64 = phases.iter().map(|p| slice[p.index()]).sum();
            cells.push(format!("{} {:>5.1}%  ", bar(frac, 14), frac * 100.0));
        }
        println!("{i:>5} {:>5.1}% | {}", total * 100.0, cells.join(""));
    }

    println!();
    let busy = rep.ledger.busy_per_phase();
    println!("total busy seconds by phase:");
    for p in Phase::ALL {
        if busy[p.index()] > 0.0 {
            println!("  {:<22} {}", p.label(), fmt_seconds(busy[p.index()]));
        }
    }
    println!(
        "\nmakespan {}  traversal from {}  utilization {:.1}%",
        fmt_seconds(rep.makespan),
        fmt_seconds(rep.traversal_start),
        rep.utilization * 100.0
    );
    println!("paper shape: high utilisation dominated by local traversal, low-util");
    println!("share step at the start, cache requests/insertions/resumptions at the tail.");
}
