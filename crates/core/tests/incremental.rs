//! Incremental tree maintenance vs. fresh rebuilds.
//!
//! Three guarantees, matched to the subsystem's contract:
//!
//! * **Zero-motion identity** — with `universe_pad = 0` and particles
//!   that do not move, a maintained tree flattens to the exact layout a
//!   fresh build produces, so traversal results are *bit-identical*
//!   (not merely close) to the full-rebuild run, step after step.
//! * **K-step cross-check** — under real motion the maintained tree's
//!   shape may legitimately differ from a fresh build's (patched
//!   buckets, kept decomposition), but shape-independent queries must
//!   agree exactly and Barnes-Hut forces must agree within the
//!   approximation's own tolerance.
//! * **Invariants under random drift** — a property test: particle
//!   conservation and exact neighbour-count agreement for arbitrary
//!   motion; the debug-build cache audit (`audit_patched`) runs inside
//!   every incremental step and panics on any structural violation.

use paratreet_core::{
    CacheModel, Configuration, DistributedEngine, Framework, SpatialNodeView, TargetBucket,
    ThreadedEngine, TraversalKind, TreeMaintainer, Visitor,
};
use paratreet_geometry::{BoundingBox, Sphere, Vec3};
use paratreet_particles::{gen, Particle};
use paratreet_runtime::MachineSpec;
use paratreet_tree::data::wire;
use paratreet_tree::Data;
use proptest::prelude::*;

/// Monopole mass moments — a trimmed-down gravity `Data` so these tests
/// exercise a float-accumulating visitor without depending on the apps
/// crate.
#[derive(Clone, Debug, Default, PartialEq)]
struct MonoData {
    moment: Vec3,
    sum_mass: f64,
    tight_box: BoundingBox,
}

impl MonoData {
    fn centroid(&self) -> Vec3 {
        if self.sum_mass == 0.0 {
            Vec3::ZERO
        } else {
            self.moment / self.sum_mass
        }
    }
}

impl Data for MonoData {
    fn from_leaf(particles: &[Particle], _bbox: &BoundingBox) -> Self {
        let mut d = MonoData::default();
        for p in particles {
            d.moment += p.pos * p.mass;
            d.sum_mass += p.mass;
            d.tight_box.grow(p.pos);
        }
        d
    }

    fn merge(&mut self, child: &Self) {
        self.moment += child.moment;
        self.sum_mass += child.sum_mass;
        self.tight_box.merge(&child.tight_box);
    }

    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_vec3(out, self.moment);
        wire::put_f64(out, self.sum_mass);
        wire::put_vec3(out, self.tight_box.lo);
        wire::put_vec3(out, self.tight_box.hi);
    }

    fn decode(input: &[u8]) -> Option<(Self, usize)> {
        let mut off = 0;
        let moment = wire::get_vec3(input, &mut off)?;
        let sum_mass = wire::get_f64(input, &mut off)?;
        let lo = wire::get_vec3(input, &mut off)?;
        let hi = wire::get_vec3(input, &mut off)?;
        Some((MonoData { moment, sum_mass, tight_box: BoundingBox { lo, hi } }, off))
    }
}

/// Barnes-Hut with monopole-only node approximation.
struct MonoGravity {
    theta: f64,
}

impl Visitor for MonoGravity {
    type Data = MonoData;
    type State = ();

    fn open(&self, source: &SpatialNodeView<'_, MonoData>, target: &TargetBucket<()>) -> bool {
        if source.data.sum_mass == 0.0 {
            return false;
        }
        let c = source.data.centroid();
        let radius = if source.data.tight_box.is_empty() {
            0.0
        } else {
            source.data.tight_box.max_dist_sq_to(c).sqrt() / self.theta
        };
        target.bbox.intersects_sphere(&Sphere::new(c, radius))
    }

    fn node(&self, source: &SpatialNodeView<'_, MonoData>, target: &mut TargetBucket<()>) {
        let c = source.data.centroid();
        let m = source.data.sum_mass;
        for p in &mut target.particles {
            let dr = c - p.pos;
            let r2 = dr.norm_sq();
            if r2 > 0.0 {
                p.acc += dr * (m / (r2 * r2.sqrt()));
                p.potential -= m / r2.sqrt() * p.mass;
            }
        }
    }

    fn leaf(&self, source: &SpatialNodeView<'_, MonoData>, target: &mut TargetBucket<()>) {
        for p in &mut target.particles {
            for s in source.particles {
                if s.id == p.id {
                    continue;
                }
                let dr = s.pos - p.pos;
                let soft = p.softening.max(s.softening);
                let r2 = dr.norm_sq() + soft * soft;
                if r2 > 0.0 {
                    p.acc += dr * (s.mass / (r2 * r2.sqrt()));
                    p.potential -= s.mass / r2.sqrt() * p.mass;
                }
            }
        }
    }
}

/// Counts (target, source) particle pairs within `radius`. Each target
/// particle lives in exactly one bucket and each source particle in
/// exactly one leaf, so the total over all buckets is a pure function
/// of the particle set — independent of tree shape — and a maintained
/// tree must reproduce a fresh build's total *exactly*, even under
/// heavy motion.
struct RadiusCount {
    radius: f64,
}

impl Visitor for RadiusCount {
    type Data = MonoData;
    type State = u64;

    fn open(&self, source: &SpatialNodeView<'_, MonoData>, target: &TargetBucket<u64>) -> bool {
        if source.particles.is_empty() {
            // Internal node: always descend (counting is leaf-only).
            return true;
        }
        let mut reach = target.bbox;
        reach.lo -= Vec3::splat(self.radius);
        reach.hi += Vec3::splat(self.radius);
        source.particles.iter().any(|p| reach.contains(p.pos))
    }

    fn node(&self, _source: &SpatialNodeView<'_, MonoData>, _target: &mut TargetBucket<u64>) {}

    fn leaf(&self, source: &SpatialNodeView<'_, MonoData>, target: &mut TargetBucket<u64>) {
        let r2 = self.radius * self.radius;
        for s in source.particles {
            for p in &target.particles {
                if (p.pos - s.pos).norm_sq() <= r2 {
                    target.state += 1;
                }
            }
        }
    }
}

fn config(incremental: bool, universe_pad: f64) -> Configuration {
    let mut config =
        Configuration { bucket_size: 8, n_subtrees: 8, n_partitions: 16, ..Default::default() };
    config.incremental.enabled = incremental;
    config.incremental.universe_pad = universe_pad;
    config
}

/// Runs `steps` gravity steps on a shared-memory framework, drifting
/// particles by `dt` between steps, and returns the final particle
/// state (accelerations included).
fn run_gravity(
    particles: Vec<Particle>,
    incremental: bool,
    universe_pad: f64,
    steps: usize,
    dt: f64,
) -> Vec<Particle> {
    let mut fw: Framework<MonoData> = Framework::new(config(incremental, universe_pad), particles);
    let visitor = MonoGravity { theta: 0.6 };
    for _ in 0..steps {
        for p in fw.particles_mut().iter_mut() {
            p.pos += p.vel * dt;
            p.acc = Vec3::ZERO;
            p.potential = 0.0;
        }
        fw.step(|s| {
            s.traverse(&visitor, TraversalKind::TopDown);
        });
    }
    let mut out = fw.particles().to_vec();
    out.sort_by_key(|p| p.id);
    out
}

#[test]
fn zero_motion_traversal_is_bit_identical() {
    let particles = gen::plummer(1_500, 7, 1.0, 1.0);
    // dt = 0: nothing moves, so a maintained tree (with no universe
    // padding) must flatten to exactly the layout a fresh build makes.
    let fresh = run_gravity(particles.clone(), false, 0.0, 3, 0.0);
    let maintained = run_gravity(particles, true, 0.0, 3, 0.0);
    assert_eq!(fresh.len(), maintained.len());
    for (a, b) in fresh.iter().zip(&maintained) {
        assert_eq!(a.id, b.id);
        for (x, y) in [(a.acc.x, b.acc.x), (a.acc.y, b.acc.y), (a.acc.z, b.acc.z)] {
            assert_eq!(x.to_bits(), y.to_bits(), "acc mismatch on particle {}", a.id);
        }
        assert_eq!(a.potential.to_bits(), b.potential.to_bits(), "potential on {}", a.id);
    }
}

#[test]
fn k_step_gravity_matches_full_rebuild() {
    let particles = gen::clustered(1_200, 3, 11, 1.0, 1.0);
    let dt = 1.0 / 128.0;
    let steps = 4;
    let fresh = run_gravity(particles.clone(), false, 0.0, steps, dt);
    let maintained = run_gravity(particles, true, 0.05, steps, dt);
    assert_eq!(fresh.len(), maintained.len());

    // The maintained tree may group particles into different buckets
    // than a fresh build after drift, so its Barnes-Hut approximation
    // differs — but both must sit within the opening-angle tolerance of
    // the exact O(n²) force. Positions never depend on tree shape here
    // (same drift rule), so both runs see identical final positions.
    let exact: Vec<Vec3> = fresh
        .iter()
        .map(|p| {
            let mut acc = Vec3::ZERO;
            for s in &fresh {
                if s.id == p.id {
                    continue;
                }
                let dr = s.pos - p.pos;
                let soft = p.softening.max(s.softening);
                let r2 = dr.norm_sq() + soft * soft;
                acc += dr * (s.mass / (r2 * r2.sqrt()));
            }
            acc
        })
        .collect();
    let rms_err = |run: &[Particle]| {
        let sum: f64 = run
            .iter()
            .zip(&exact)
            .map(|(p, e)| ((p.acc - *e).norm() / e.norm().max(1e-12)).powi(2))
            .sum();
        (sum / run.len() as f64).sqrt()
    };
    for (a, b) in fresh.iter().zip(&maintained) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.pos.x.to_bits(), b.pos.x.to_bits());
    }
    let err_fresh = rms_err(&fresh);
    let err_inc = rms_err(&maintained);
    assert!(err_fresh < 5e-2, "fresh-build BH error {err_fresh} out of tolerance");
    assert!(
        err_inc < (2.0 * err_fresh).max(err_fresh + 1e-2),
        "maintained-tree BH error {err_inc} exceeds fresh-build error {err_fresh} band"
    );
}

#[test]
fn k_step_neighbour_counts_match_exactly() {
    // Radius queries are tree-shape independent: incremental and fresh
    // runs must agree *exactly* at every step, including after drift.
    let particles = gen::plummer(800, 3, 1.0, 1.0);
    let dt = 1.0 / 64.0;
    let visitor = RadiusCount { radius: 0.15 };

    let mut fresh: Framework<MonoData> = Framework::new(config(false, 0.0), particles.clone());
    let mut inc: Framework<MonoData> = Framework::new(config(true, 0.05), particles);
    for step in 0..4 {
        for fw in [&mut fresh, &mut inc] {
            for p in fw.particles_mut().iter_mut() {
                p.pos += p.vel * dt;
            }
        }
        let (state_a, _) = fresh.step(|s| s.traverse(&visitor, TraversalKind::TopDown));
        let (state_b, _) = inc.step(|s| s.traverse(&visitor, TraversalKind::TopDown));
        let total_a: u64 = state_a.0.iter().sum();
        let total_b: u64 = state_b.0.iter().sum();
        assert_eq!(total_a, total_b, "neighbour totals diverged at step {step}");
    }
}

#[test]
fn des_engine_maintained_runs_and_reports_update_metrics() {
    let particles = gen::clustered(2_000, 3, 5, 1.0, 1.0);
    let visitor = MonoGravity { theta: 0.6 };
    let mut cfg = config(true, 0.05);
    cfg.bucket_size = 16;
    let engine = DistributedEngine::new(
        MachineSpec::test(3, 2),
        cfg,
        CacheModel::WaitFree,
        TraversalKind::TopDown,
        &visitor,
    );
    let mut slot: Option<TreeMaintainer<MonoData>> = None;
    let mut ps = particles;
    let mut last = None;
    for _ in 0..3 {
        let rep = engine.run_maintained(&mut slot, ps);
        ps = rep.particles.clone();
        for p in ps.iter_mut() {
            p.pos += p.vel * (1.0 / 64.0);
            p.acc = Vec3::ZERO;
            p.potential = 0.0;
        }
        last = Some(rep);
    }
    let rep = last.unwrap();
    assert!(rep.makespan > 0.0);
    assert_eq!(rep.particles.len(), 2_000);
    assert!(rep.metrics.get_u64("tree.update.steps") >= 2, "update steps must accumulate");
    assert!(rep.metrics.get_u64("tree.update.moved") > 0, "drift must move particles");

    // Determinism: the same maintained run replays to the same virtual
    // makespan and metrics (this is what checkpoint replay relies on).
    let mut slot2: Option<TreeMaintainer<MonoData>> = None;
    let mut ps2 = gen::clustered(2_000, 3, 5, 1.0, 1.0);
    let mut last2 = None;
    for _ in 0..3 {
        let rep = engine.run_maintained(&mut slot2, ps2);
        ps2 = rep.particles.clone();
        for p in ps2.iter_mut() {
            p.pos += p.vel * (1.0 / 64.0);
            p.acc = Vec3::ZERO;
            p.potential = 0.0;
        }
        last2 = Some(rep);
    }
    let rep2 = last2.unwrap();
    assert_eq!(rep.makespan, rep2.makespan);
    assert_eq!(rep.metrics, rep2.metrics);
}

#[test]
fn threaded_engine_maintained_matches_fresh_on_first_step() {
    let particles = gen::plummer(1_000, 13, 1.0, 1.0);
    let visitor = MonoGravity { theta: 0.6 };
    let engine = ThreadedEngine::new(config(false, 0.0), 2, 2, &visitor);

    let fresh = engine.run_iteration(particles.clone(), TraversalKind::TopDown);
    let mut slot: Option<TreeMaintainer<MonoData>> = None;
    let maintained = engine.run_maintained(&mut slot, particles, TraversalKind::TopDown);

    // The first maintained step seeds from scratch, so its tree — and
    // therefore its interaction counts — must equal a fresh iteration.
    assert_eq!(fresh.counts.leaf_interactions, maintained.counts.leaf_interactions);
    assert_eq!(fresh.counts.node_interactions, maintained.counts.node_interactions);
    assert_eq!(fresh.particles.len(), maintained.particles.len());
    assert!(slot.is_some(), "run_maintained must leave the maintainer seeded");

    // A second maintained step reports update activity.
    let mut ps = maintained.particles;
    ps.sort_by_key(|p| p.id);
    for p in ps.iter_mut() {
        p.pos += p.vel * (1.0 / 64.0);
        p.acc = Vec3::ZERO;
        p.potential = 0.0;
    }
    let second = engine.run_maintained(&mut slot, ps, TraversalKind::TopDown);
    assert!(second.metrics.get_u64("tree.update.steps") >= 1);
    assert_eq!(second.particles.len(), 1_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Random particle clouds with random per-step drift: the
    // maintained framework conserves particles, keeps ids unique, and
    // agrees exactly with a fresh build on shape-independent neighbour
    // counts after every step. The debug-build `audit_patched` runs
    // inside each incremental step, so structural violations (overfull
    // buckets, broken summaries, orphan placeholders) panic rather
    // than pass silently.
    // Batch apply is deterministic across worker counts: the same
    // random drift maintained with 1, 2, and 8 batch threads yields
    // bit-identical flattened trees, batch counts, and update stats at
    // every step.
    #[test]
    fn thread_sweep_is_bit_identical(
        seed in 0u64..1_000,
        n in 100usize..600,
        drift in 0.0f64..0.2,
        steps in 1usize..4,
    ) {
        let run = |threads: usize| {
            let mut cfg = config(true, 0.05);
            cfg.incremental.batch_threads = threads;
            let ps = gen::uniform_cube(n, seed, 1.0, 1.0);
            let (mut m, seeded) = TreeMaintainer::<MonoData>::seed(&cfg, ps, true);
            let mut master: Vec<Particle> =
                seeded.iter().flat_map(|t| t.particles.iter().copied()).collect();
            let mut out = Vec::new();
            for step in 0..steps {
                let uni = m.universe();
                for (i, p) in master.iter_mut().enumerate() {
                    let h = (seed ^ (i as u64) ^ (step as u64) << 32)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    p.pos.x = (p.pos.x + ((h >> 1 & 0xFFFF) as f64 / 65_535.0 - 0.5) * drift)
                        .clamp(uni.lo.x, uni.hi.x);
                    p.pos.y = (p.pos.y + ((h >> 17 & 0xFFFF) as f64 / 65_535.0 - 0.5) * drift)
                        .clamp(uni.lo.y, uni.hi.y);
                    p.pos.z = (p.pos.z + ((h >> 33 & 0xFFFF) as f64 / 65_535.0 - 0.5) * drift)
                        .clamp(uni.lo.z, uni.hi.z);
                }
                let (trees, round) = m.advance(master);
                master = trees.iter().flat_map(|t| t.particles.iter().copied()).collect();
                out.push((trees, round.n_batches, round.stats));
            }
            out
        };
        let a = run(1);
        let b = run(2);
        let c = run(8);
        for (x, y) in a.iter().zip(&b).chain(a.iter().zip(&c)) {
            prop_assert_eq!(x.1, y.1, "batch counts diverged across thread counts");
            prop_assert_eq!(&x.2, &y.2, "update stats diverged across thread counts");
            prop_assert_eq!(x.0.len(), y.0.len());
            for (ta, tb) in x.0.iter().zip(&y.0) {
                prop_assert_eq!(&ta.particles, &tb.particles);
                prop_assert_eq!(ta.nodes.len(), tb.nodes.len());
                for (na, nb) in ta.nodes.iter().zip(&tb.nodes) {
                    prop_assert_eq!(na.key, nb.key);
                    prop_assert_eq!(&na.shape, &nb.shape);
                    prop_assert_eq!(&na.data, &nb.data);
                }
            }
        }
    }

    #[test]
    fn maintained_tree_preserves_invariants_under_drift(
        seed in 0u64..1_000,
        n in 50usize..250,
        drift in 0.0f64..0.3,
        steps in 1usize..4,
    ) {
        let mut particles = gen::uniform_cube(n, seed, 1.0, 1.0);
        // Deterministic pseudo-random velocities so drift varies by
        // particle and direction.
        for (i, p) in particles.iter_mut().enumerate() {
            let h = (seed ^ (i as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            p.vel = Vec3::new(
                ((h >> 1 & 0xFFFF) as f64 / 65_535.0 - 0.5) * drift,
                ((h >> 17 & 0xFFFF) as f64 / 65_535.0 - 0.5) * drift,
                ((h >> 33 & 0xFFFF) as f64 / 65_535.0 - 0.5) * drift,
            );
        }
        let visitor = RadiusCount { radius: 0.2 };
        let mut fresh: Framework<MonoData> = Framework::new(config(false, 0.0), particles.clone());
        let mut inc: Framework<MonoData> = Framework::new(config(true, 0.05), particles);
        for step in 0..steps {
            for fw in [&mut fresh, &mut inc] {
                for p in fw.particles_mut().iter_mut() {
                    p.pos += p.vel;
                }
            }
            let (state_a, _) = fresh.step(|s| s.traverse(&visitor, TraversalKind::TopDown));
            let (state_b, _) = inc.step(|s| s.traverse(&visitor, TraversalKind::TopDown));
            let total_a: u64 = state_a.0.iter().sum();
            let total_b: u64 = state_b.0.iter().sum();
            prop_assert_eq!(total_a, total_b, "neighbour totals diverged at step {}", step);

            prop_assert_eq!(inc.particles().len(), n);
            let mut ids: Vec<u64> = inc.particles().iter().map(|p| p.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), n, "particle ids must stay unique");
        }
    }
}
