//! The per-process cached global tree (Fig. 2).
//!
//! One [`CacheTree`] lives on every simulated process (rank). After the
//! local tree build it holds
//!
//! * the *top skeleton*: the global root and every ancestor of a subtree
//!   root, with `Data` summaries merged from the subtree root summaries
//!   that all ranks exchange ("the global root and a user-specified
//!   number of its descendants are shared with each process"),
//! * grafted local subtrees (full structure, reachable "as if local"),
//! * placeholders for remote subtrees, each with an atomic `requested`
//!   flag,
//! * received fill fragments spliced in by atomic pointer swap.
//!
//! # Safety model
//!
//! Every node is individually boxed; ownership of all boxes lives in an
//! append-only allocation list inside the tree, and nothing is freed
//! until the `CacheTree` drops (the cache is no-delete, like the paper's).
//! Child pointers only ever point at nodes in that list, and every store
//! that publishes a pointer is `Release` while traversal loads are
//! `Acquire`. Hence any `&CacheNode` obtained through the tree is valid
//! for the tree's lifetime and its non-atomic fields are fully visible.

use crate::node::{CacheNode, NodeKind};
use crate::stats::CacheStats;
use crate::wire;
use parking_lot::Mutex;
use paratreet_geometry::{BoundingBox, NodeKey};
use paratreet_tree::node::NO_NODE;
use paratreet_tree::{BuiltTree, Data, NodeShape};
use std::collections::HashMap;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, Ordering};

/// The summary of one subtree root that every rank learns during the
/// share step: enough to build the top skeleton and to prune traversals
/// without fetching.
#[derive(Clone, Debug)]
pub struct SubtreeSummary<D> {
    /// Key of the subtree root in the global tree.
    pub key: NodeKey,
    /// Spatial footprint of the subtree.
    pub bbox: BoundingBox,
    /// Particles in the subtree.
    pub n_particles: u32,
    /// Accumulated `Data` of the subtree root.
    pub data: D,
    /// Rank that owns the subtree.
    pub home_rank: u32,
}

/// Result of asking the cache for a remote node's contents.
#[derive(Debug)]
pub enum RequestOutcome<'a, D> {
    /// The data is already materialised (a fill won the race); traverse on.
    Ready(&'a CacheNode<D>),
    /// First request for this key: the caller must send a fetch to
    /// `home_rank`. The waiter has been parked.
    SendFetch {
        /// Where the authoritative subtree lives.
        home_rank: u32,
    },
    /// A fetch is already in flight; the waiter has been parked.
    InFlight,
}

/// Book-keeping guarded by one short-held mutex: the process-level hash
/// table of materialised nodes plus parked waiters. Traversal *reads*
/// never touch this — they walk atomic child pointers.
struct Bookkeeping<D> {
    resolved: HashMap<NodeKey, NonNull<CacheNode<D>>>,
    pending: HashMap<NodeKey, Vec<u64>>,
}

/// The per-rank software cache; see module docs.
pub struct CacheTree<D: Data> {
    /// This cache's rank (process id).
    pub rank: u32,
    /// Bits per key digit of the tree type in use.
    pub bits: u32,
    /// Traffic counters.
    pub stats: CacheStats,
    root: AtomicPtr<CacheNode<D>>,
    book: Mutex<Bookkeeping<D>>,
    allocs: Mutex<Vec<NonNull<CacheNode<D>>>>,
}

// SAFETY: the raw pointers all target boxed nodes owned by `allocs`,
// which live exactly as long as the tree; cross-thread publication of
// node contents happens-before any read via the Release/Acquire pairs on
// child pointers and the root pointer, or via the book-keeping mutex.
unsafe impl<D: Data> Send for CacheTree<D> {}
unsafe impl<D: Data> Sync for CacheTree<D> {}

impl<D: Data> CacheTree<D> {
    /// An empty cache for `rank`, for a tree with `bits` per key digit.
    pub fn new(rank: u32, bits: u32) -> CacheTree<D> {
        CacheTree {
            rank,
            bits,
            stats: CacheStats::new(),
            root: AtomicPtr::new(std::ptr::null_mut()),
            book: Mutex::new(Bookkeeping { resolved: HashMap::new(), pending: HashMap::new() }),
            allocs: Mutex::new(Vec::new()),
        }
    }

    /// Takes ownership of a boxed node, returning its stable pointer.
    fn adopt(&self, node: Box<CacheNode<D>>) -> NonNull<CacheNode<D>> {
        let ptr = NonNull::from(Box::leak(node));
        self.allocs.lock().push(ptr);
        ptr
    }

    /// Builds the top skeleton from all ranks' subtree summaries and
    /// grafts this rank's built subtrees. `local` maps subtree-root keys
    /// to built trees; every key in `local` must appear in `summaries`
    /// with `home_rank == self.rank`.
    ///
    /// Called once per iteration, before traversal, from one thread.
    pub fn init(&self, summaries: &[SubtreeSummary<D>], local: Vec<BuiltTree<D>>) {
        assert!(!summaries.is_empty(), "cannot init cache with no subtrees");
        let mut local_by_key: HashMap<NodeKey, BuiltTree<D>> = HashMap::new();
        for t in local {
            local_by_key.insert(t.root().key, t);
        }

        // Collect every ancestor of a subtree root, with its children.
        let mut child_keys: HashMap<NodeKey, Vec<NodeKey>> = HashMap::new();
        for s in summaries {
            let mut k = s.key;
            while k != NodeKey::root() {
                let p = k.parent(self.bits);
                let kids = child_keys.entry(p).or_default();
                if !kids.contains(&k) {
                    kids.push(k);
                }
                k = p;
            }
        }

        let mut book = self.book.lock();
        // Materialise subtree roots first.
        for s in summaries {
            let ptr = if let Some(tree) = local_by_key.remove(&s.key) {
                self.graft(tree, s.home_rank)
            } else {
                self.adopt(Box::new(CacheNode::new(
                    s.key,
                    s.bbox,
                    s.n_particles,
                    s.data.clone(),
                    s.home_rank,
                    NodeKind::Placeholder,
                    vec![],
                )))
            };
            book.resolved.insert(s.key, ptr);
        }
        assert!(local_by_key.is_empty(), "local subtree without matching summary");

        // Materialise ancestors bottom-up (deepest keys first, i.e. by
        // descending raw key value since children have longer keys; sort
        // by level explicitly for clarity).
        let mut ancestors: Vec<NodeKey> = child_keys.keys().copied().collect();
        ancestors.sort_by_key(|k| std::cmp::Reverse(k.level(self.bits)));
        for key in ancestors {
            if book.resolved.contains_key(&key) {
                // A subtree root can itself be an ancestor of nothing
                // else; and with one subtree the root is the summary.
                continue;
            }
            let mut bbox = BoundingBox::empty();
            let mut n = 0u32;
            let mut data = D::default();
            let node = Box::new(CacheNode::new(
                key,
                bbox, // placeholder; fixed below after children are read
                0,
                D::default(),
                u32::MAX, // the skeleton is replicated, not owned
                NodeKind::Internal,
                vec![],
            ));
            let ptr = self.adopt(node);
            let mut kids = child_keys[&key].clone();
            kids.sort_by_key(|k| k.child_index(self.bits));
            for ck in kids {
                let child = book.resolved[&ck];
                // SAFETY: both nodes are owned by this tree and we are
                // pre-publication (under the book lock, root not yet set).
                let child_ref = unsafe { child.as_ref() };
                bbox.merge(&child_ref.bbox);
                n += child_ref.n_particles;
                data.merge(&child_ref.data);
                unsafe { ptr.as_ref() }.children[ck.child_index(self.bits)]
                    .store(child.as_ptr(), Ordering::Relaxed);
            }
            // SAFETY: sole owner pre-publication; no other thread can
            // reach this node yet.
            unsafe {
                let m = &mut *ptr.as_ptr();
                m.bbox = bbox;
                m.n_particles = n;
                m.data = data;
            }
            book.resolved.insert(key, ptr);
        }

        let root_ptr = book.resolved[&NodeKey::root()];
        drop(book);
        self.root.store(root_ptr.as_ptr(), Ordering::Release);
    }

    /// Converts a built subtree into cache nodes, wiring children, and
    /// returns the pointer to its root. Pre-publication, so plain stores.
    fn graft(&self, tree: BuiltTree<D>, home_rank: u32) -> NonNull<CacheNode<D>> {
        let mut ptrs: Vec<NonNull<CacheNode<D>>> = Vec::with_capacity(tree.nodes.len());
        for bn in &tree.nodes {
            let (kind, particles) = match bn.shape {
                NodeShape::Internal => (NodeKind::Internal, vec![]),
                NodeShape::Empty => (NodeKind::Empty, vec![]),
                NodeShape::Leaf { start, end } => {
                    (NodeKind::Leaf, tree.particles[start as usize..end as usize].to_vec())
                }
            };
            let node = Box::new(CacheNode::new(
                bn.key,
                bn.bbox,
                bn.n_particles,
                bn.data.clone(),
                home_rank,
                kind,
                particles,
            ));
            ptrs.push(self.adopt(node));
        }
        for (i, bn) in tree.nodes.iter().enumerate() {
            for (slot, &c) in bn.children.iter().enumerate() {
                if c != NO_NODE {
                    unsafe { ptrs[i].as_ref() }.children[slot]
                        .store(ptrs[c as usize].as_ptr(), Ordering::Relaxed);
                }
            }
        }
        ptrs[0]
    }

    /// The global root; `None` before [`CacheTree::init`].
    pub fn root(&self) -> Option<&CacheNode<D>> {
        let p = self.root.load(Ordering::Acquire);
        // SAFETY: see module-level safety model.
        unsafe { p.as_ref() }
    }

    /// Looks a node up in the process-level hash table. Takes the
    /// book-keeping lock — setup/debug paths only, not traversal.
    pub fn lookup(&self, key: NodeKey) -> Option<&CacheNode<D>> {
        let book = self.book.lock();
        let p = book.resolved.get(&key).copied();
        // SAFETY: nodes live as long as self.
        p.map(|nn| unsafe { &*nn.as_ptr() })
    }

    /// Asks for the contents of placeholder `node`, parking `waiter`
    /// until the fill arrives. See [`RequestOutcome`] for what the caller
    /// must do; if the fill already arrived the parked waiter is *not*
    /// registered and the materialised node is returned instead.
    pub fn request(&self, node: &CacheNode<D>, waiter: u64) -> RequestOutcome<'_, D> {
        debug_assert!(node.is_placeholder());
        let mut book = self.book.lock();
        // Re-check under the lock: a fill may have swapped the
        // placeholder out after the caller loaded its pointer.
        if let Some(&cur) = book.resolved.get(&node.key) {
            // SAFETY: nodes live as long as self.
            let cur_ref = unsafe { &*cur.as_ptr() };
            if !cur_ref.is_placeholder() {
                return RequestOutcome::Ready(cur_ref);
            }
        }
        book.pending.entry(node.key).or_default().push(waiter);
        CacheStats::add(&self.stats.waiters_parked, 1);
        drop(book);
        if !node.requested.swap(true, Ordering::AcqRel) {
            CacheStats::add(&self.stats.requests_sent, 1);
            RequestOutcome::SendFetch { home_rank: node.home_rank }
        } else {
            CacheStats::add(&self.stats.requests_deduped, 1);
            RequestOutcome::InFlight
        }
    }

    /// Finds the node for `key`: first via the process-level hash table
    /// (which holds subtree roots and fill fragments), then by walking
    /// down from the nearest hashed ancestor following the key's digits.
    /// This is how a home rank locates an interior node of its local
    /// subtree when a fetch arrives — the paper hashes only subtree
    /// roots, not every node.
    pub fn find(&self, key: NodeKey) -> Option<&CacheNode<D>> {
        if let Some(n) = self.lookup(key) {
            return Some(n);
        }
        let mut node = self.root()?;
        let target_level = key.level(self.bits);
        let mut level = node.key.level(self.bits);
        while level < target_level {
            level += 1;
            let digit = key.ancestor_at(level, self.bits).child_index(self.bits);
            node = node.child(digit)?;
        }
        (node.key == key).then_some(node)
    }

    /// Serialises the subtree under `key` to relative `depth` levels —
    /// the home-side half of a fetch (Step 1 of Fig. 2).
    pub fn serialize_fragment(&self, key: NodeKey, depth: u32) -> Option<Vec<u8>> {
        let node = self.find(key)?;
        Some(wire::encode_fragment(node, depth))
    }

    /// Splices a received fill into the tree (Steps 2–4 of Fig. 2) and
    /// returns the materialised fragment root plus every parked waiter
    /// this fill unblocks (Step 5). Any worker thread may call this —
    /// that is the point of the wait-free design: the tree structure is
    /// updated by one atomic swap, and only the hash-table/pending
    /// book-keeping takes a (short) lock.
    pub fn insert_fragment(&self, bytes: &[u8]) -> Result<(&CacheNode<D>, Vec<u64>), String> {
        let frag = wire::decode_fragment::<D>(bytes).ok_or("malformed fill fragment")?;
        if frag.nodes.is_empty() {
            return Err("empty fill fragment".into());
        }
        CacheStats::add(&self.stats.fills_inserted, 1);
        CacheStats::add(&self.stats.bytes_received, bytes.len() as u64);
        CacheStats::add(&self.stats.nodes_inserted, frag.nodes.len() as u64);
        CacheStats::add(&self.stats.particles_inserted, frag.n_particles);

        let root_key = frag.nodes[0].key;
        // Adopt allocations (pointers stay valid; Boxes move, heap doesn't).
        let mut ptrs = Vec::with_capacity(frag.nodes.len());
        {
            let mut allocs = self.allocs.lock();
            for node in frag.nodes {
                let ptr = NonNull::from(Box::leak(node));
                allocs.push(ptr);
                ptrs.push(ptr);
            }
        }
        let root_ptr = ptrs[0];

        let mut book = self.book.lock();
        // Wire frontier placeholders through the hash table (Step 3):
        // if a key is already materialised (e.g. an ancestor fill raced
        // with a sibling path), point at the existing node instead.
        for &p in &ptrs {
            // SAFETY: just adopted, owned by self.
            let node = unsafe { p.as_ref() };
            if node.kind == NodeKind::Internal {
                for slot in 0..wire::MAX_BRANCH {
                    let child = node.children[slot].load(Ordering::Relaxed);
                    if child.is_null() {
                        continue;
                    }
                    // SAFETY: fragment-internal pointer, adopted above.
                    let child_key = unsafe { (*child).key };
                    if let Some(&existing) = book.resolved.get(&child_key) {
                        // Keep the already-materialised node; the
                        // fragment's duplicate stays allocated but
                        // unreachable (no-delete cache).
                        node.children[slot].store(existing.as_ptr(), Ordering::Release);
                    }
                }
            }
        }
        for &p in &ptrs {
            let node = unsafe { p.as_ref() };
            book.resolved.entry(node.key).or_insert(p);
        }
        // The fragment root replaces the placeholder: update the hash
        // table and swap the parent's child slot atomically (Step 4).
        book.resolved.insert(root_key, root_ptr);
        let resumed = book.pending.remove(&root_key).unwrap_or_default();
        CacheStats::add(&self.stats.waiters_resumed, resumed.len() as u64);

        if root_key != NodeKey::root() {
            let parent_key = root_key.parent(self.bits);
            let parent = book
                .resolved
                .get(&parent_key)
                .copied()
                .ok_or_else(|| format!("fill for {root_key} has no materialised parent"))?;
            let slot = root_key.child_index(self.bits);
            // SAFETY: parent owned by self; Release publishes the fully
            // wired fragment to traversal threads that Acquire-load it.
            unsafe { parent.as_ref() }.children[slot]
                .store(root_ptr.as_ptr(), Ordering::Release);
        } else {
            self.root.store(root_ptr.as_ptr(), Ordering::Release);
        }
        drop(book);

        // SAFETY: nodes live as long as self.
        Ok((unsafe { &*root_ptr.as_ptr() }, resumed))
    }

    /// Number of nodes currently allocated (including superseded
    /// placeholders — the cache is no-delete).
    pub fn n_allocated(&self) -> usize {
        self.allocs.lock().len()
    }
}

impl<D: Data> Drop for CacheTree<D> {
    fn drop(&mut self) {
        for ptr in self.allocs.get_mut().drain(..) {
            // SAFETY: every pointer in `allocs` came from Box::leak and
            // is dropped exactly once, here.
            drop(unsafe { Box::from_raw(ptr.as_ptr()) });
        }
    }
}
