//! Greedy critical-path extraction.
//!
//! The traces carry explicit causal links only for request spans; for
//! phase spans (DES and engine traces) the dependency structure is
//! implicit in time. The classic Projections-style approximation walks
//! *backwards from the last-finishing span*: whatever ran last bounds
//! the makespan, and whatever finished latest before it started is,
//! on a work-conserving schedule, what it was waiting on. Iterating
//! that rule yields a chain from the makespan back to t=0 whose spans
//! are the load-bearing work — shrink any of them and the end moves.
//!
//! Every choice is made through the total order `(end, start, rank,
//! worker, name)`, so the same trace always yields the same chain.

use crate::trace::{SpanRec, TraceData};

/// The extracted chain, chronological.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalPath {
    /// Indices into `trace.spans`, chronological (earliest first).
    pub steps: Vec<usize>,
    /// Sum of step durations (µs) — the path's work.
    pub work_us: f64,
    /// Chain extent: last step end − first step start (µs).
    pub extent_us: f64,
    /// Extent not covered by any step (µs, ≥ 0) — wait/idle on the path.
    pub gap_us: f64,
    /// Work per span name along the path, descending by time.
    pub by_name: Vec<(String, f64)>,
}

/// The deterministic tie-break: later end wins, then later start, then
/// track and name order.
fn better(a: &SpanRec, b: &SpanRec) -> bool {
    (a.end_us(), a.start_us, a.rank, a.worker, &a.name)
        > (b.end_us(), b.start_us, b.rank, b.worker, &b.name)
}

/// Extracts the critical path of a trace. Empty traces yield an empty
/// path.
pub fn critical_path(trace: &TraceData) -> CriticalPath {
    let spans = &trace.spans;
    if spans.is_empty() {
        return CriticalPath::default();
    }
    let mut used = vec![false; spans.len()];
    // Anchor: the last-finishing span.
    let mut cur =
        (0..spans.len()).fold(0, |best, i| if better(&spans[i], &spans[best]) { i } else { best });
    used[cur] = true;
    let mut chain = vec![cur];
    loop {
        let cur_start = spans[cur].start_us;
        // Preferred predecessor: latest-ending span that finished by the
        // time the current one started (the completed wait). Fallback:
        // latest-ending span that *started* earlier (overlapping work,
        // e.g. the parent of a nested stage).
        let pick = |pred: &dyn Fn(&SpanRec) -> bool| -> Option<usize> {
            let mut best: Option<usize> = None;
            for (i, s) in spans.iter().enumerate() {
                if used[i] || !pred(s) {
                    continue;
                }
                if best.is_none_or(|b| better(s, &spans[b])) {
                    best = Some(i);
                }
            }
            best
        };
        let next = pick(&|s: &SpanRec| s.end_us() <= cur_start)
            .or_else(|| pick(&|s: &SpanRec| s.start_us < cur_start));
        match next {
            Some(i) => {
                used[i] = true;
                chain.push(i);
                cur = i;
            }
            None => break,
        }
    }
    chain.reverse();
    let work_us: f64 = chain.iter().map(|&i| spans[i].dur_us).sum();
    let extent_us = spans[*chain.last().unwrap()].end_us() - spans[chain[0]].start_us;
    let mut by_name: Vec<(String, f64)> = Vec::new();
    for &i in &chain {
        let s = &spans[i];
        match by_name.iter_mut().find(|(n, _)| *n == s.name) {
            Some((_, t)) => *t += s.dur_us,
            None => by_name.push((s.name.clone(), s.dur_us)),
        }
    }
    by_name.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    CriticalPath {
        gap_us: (extent_us - work_us).max(0.0),
        steps: chain,
        work_us,
        extent_us,
        by_name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceData;

    fn span(name: &str, start: f64, dur: f64, worker: u64) -> SpanRec {
        SpanRec {
            name: name.to_string(),
            start_us: start,
            dur_us: dur,
            rank: 0,
            worker,
            key: None,
            id: None,
            parent: None,
            request: None,
        }
    }

    #[test]
    fn walks_back_through_latest_ending_predecessors() {
        // Worker 0: decomp [0,4), build [4,10). Worker 1: decomp [0,3),
        // build [3,6), traverse [10,20). The path must be
        // w0.decomp → w0.build → w1.traverse: traverse waited on the
        // *slow* build, and that build on the slow decomposition.
        let trace = TraceData {
            clock: "virtual".into(),
            spans: vec![
                span("decomp", 0.0, 4.0, 0),
                span("decomp", 0.0, 3.0, 1),
                span("build", 4.0, 6.0, 0),
                span("build", 3.0, 3.0, 1),
                span("traverse", 10.0, 10.0, 1),
            ],
            counters: vec![],
        };
        let cp = critical_path(&trace);
        let names: Vec<(&str, u64)> = cp
            .steps
            .iter()
            .map(|&i| (trace.spans[i].name.as_str(), trace.spans[i].worker))
            .collect();
        assert_eq!(names, vec![("decomp", 0), ("build", 0), ("traverse", 1)]);
        assert!((cp.work_us - 20.0).abs() < 1e-9);
        assert!((cp.extent_us - 20.0).abs() < 1e-9);
        assert!(cp.gap_us.abs() < 1e-9);
        assert_eq!(cp.by_name[0], ("traverse".to_string(), 10.0));
    }

    #[test]
    fn gaps_and_determinism() {
        // A lone late span after an idle gap: path walks through the
        // gap and reports it.
        let trace = TraceData {
            clock: "wall".into(),
            spans: vec![span("a", 0.0, 2.0, 0), span("b", 5.0, 5.0, 0)],
            counters: vec![],
        };
        let a = critical_path(&trace);
        let b = critical_path(&trace);
        assert_eq!(a, b);
        assert_eq!(a.steps.len(), 2);
        assert!((a.work_us - 7.0).abs() < 1e-9);
        assert!((a.gap_us - 3.0).abs() < 1e-9);
        assert!(critical_path(&TraceData::default()).steps.is_empty());
    }
}
