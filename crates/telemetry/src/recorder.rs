//! Recorders: where instrumented code deposits spans and counts.
//!
//! The workhorse is [`ShardedRecorder`]: one buffer per worker shard,
//! single swap-in/swap-out on the record path, atomic-swap drain — the
//! same wait-free discipline as the software cache itself. A writer
//! never blocks on another writer or on a drain; a drain never blocks a
//! writer. The rare race (a drain swapping a fresh buffer in while a
//! writer holds the shard's buffer) is resolved by moving the displaced
//! buffer to a mutex-protected overflow list, touched only on that
//! race.
//!
//! This module only exists with the `recorder` feature (the default).
//! Without it, [`crate::Telemetry`] is a zero-sized no-op handle and
//! none of this code is compiled.

use crate::span::{ClockDomain, Span, Trace};
use std::collections::BTreeMap;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One recorded item. Counters ride the same shard buffers as spans so
/// the record path stays a single push.
#[derive(Clone, Copy, Debug)]
enum Event {
    Span(Span),
    Count(&'static str, u64),
}

/// Anything that can absorb telemetry events. The sharded recorder is
/// the real implementation; tests may substitute their own.
pub trait Recorder: Send + Sync {
    /// Records a completed span.
    fn record_span(&self, span: Span);
    /// Adds `delta` to the named counter.
    fn add_count(&self, name: &'static str, delta: u64);
    /// Takes everything recorded so far, leaving the recorder empty.
    fn drain(&self) -> Trace;
}

/// Distinguishes recorder instances in the thread-local slot cache.
static NEXT_RECORDER_ID: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    /// `(recorder id, slot)` pairs for every recorder this thread has
    /// written to. Tiny (a handful of recorders per process), so a
    /// linear scan beats a map.
    static SLOTS: std::cell::RefCell<Vec<(usize, usize)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

type Buffer = Vec<Event>;

/// Lock-free sharded recorder. See module docs for the discipline.
#[derive(Debug)]
pub struct ShardedRecorder {
    /// This instance's id in the thread-local slot cache.
    id: usize,
    /// Hands out dense per-recorder thread slots (0, 1, 2, …).
    next_slot: AtomicUsize,
    /// Per-shard buffers. A null slot means the owning writer is
    /// momentarily holding the buffer to push into it.
    shards: Vec<AtomicPtr<Buffer>>,
    /// Buffers displaced by a drain racing a writer.
    overflow: Mutex<Vec<Buffer>>,
    /// Wall-clock epoch for `now_us`.
    epoch: Instant,
    clock: ClockDomain,
    /// Hands out span ids for request tracing (1, 2, …; 0 is reserved
    /// as "no id" so disabled handles can return it).
    next_span_id: AtomicU64,
}

impl ShardedRecorder {
    /// A recorder with `n_shards` buffers stamping `clock` timestamps.
    pub fn new(n_shards: usize, clock: ClockDomain) -> ShardedRecorder {
        let n = n_shards.max(1);
        ShardedRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            next_slot: AtomicUsize::new(0),
            shards: (0..n)
                .map(|_| AtomicPtr::new(Box::into_raw(Box::new(Buffer::new()))))
                .collect(),
            overflow: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            clock,
            next_span_id: AtomicU64::new(1),
        }
    }

    /// A fresh span id, unique within this recorder (never 0).
    pub fn next_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The wall-clock instant `now_us` measures from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The calling thread's dense slot for this recorder, assigned on
    /// first use. The first `n_shards` writer threads get exclusive
    /// shards (the single-writer case the ordering guarantee needs);
    /// later threads wrap around, which stays correct but may interleave
    /// buffers.
    pub fn thread_slot(&self) -> usize {
        SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            if let Some((_, slot)) = slots.iter().find(|(id, _)| *id == self.id) {
                return *slot;
            }
            let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
            slots.push((self.id, slot));
            slot
        })
    }

    /// The recorder's clock domain.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Microseconds since the recorder was created (wall clock).
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    fn record(&self, ev: Event) {
        let slot = &self.shards[self.thread_slot() % self.shards.len()];
        // Take the shard's buffer (or start a fresh one if a concurrent
        // writer on the same shard holds it).
        let taken = slot.swap(ptr::null_mut(), Ordering::AcqRel);
        let mut buf = if taken.is_null() {
            Box::new(Buffer::new())
        } else {
            // Safety: a non-null pointer in a slot is exclusively owned
            // by whoever swapped it out; it originated in Box::into_raw.
            unsafe { Box::from_raw(taken) }
        };
        buf.push(ev);
        // Put it back. If a drain (or a same-shard writer) installed a
        // buffer meanwhile, move the displaced one to overflow so no
        // event is ever lost.
        let displaced = slot.swap(Box::into_raw(buf), Ordering::AcqRel);
        if !displaced.is_null() {
            // Safety: same ownership argument as above.
            let displaced = unsafe { Box::from_raw(displaced) };
            if !displaced.is_empty() {
                self.overflow.lock().expect("overflow lock").push(*displaced);
            }
        }
    }
}

impl Recorder for ShardedRecorder {
    fn record_span(&self, span: Span) {
        self.record(Event::Span(span));
    }

    fn add_count(&self, name: &'static str, delta: u64) {
        self.record(Event::Count(name, delta));
    }

    fn drain(&self) -> Trace {
        let mut buffers: Vec<Buffer> =
            std::mem::take(&mut *self.overflow.lock().expect("overflow lock"));
        for slot in &self.shards {
            let fresh = Box::into_raw(Box::new(Buffer::new()));
            let taken = slot.swap(fresh, Ordering::AcqRel);
            if !taken.is_null() {
                // Safety: exclusively owned once swapped out.
                buffers.push(*unsafe { Box::from_raw(taken) });
            }
            // A null slot means a writer holds that buffer right now; its
            // events surface in the next drain (callers drain at quiesce
            // points, where every slot is populated).
        }
        let mut spans = Vec::new();
        let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
        for buf in buffers {
            for ev in buf {
                match ev {
                    Event::Span(s) => spans.push(s),
                    Event::Count(name, d) => *counters.entry(name).or_insert(0) += d,
                }
            }
        }
        Trace { clock: self.clock, spans, counters }
    }
}

impl Drop for ShardedRecorder {
    fn drop(&mut self) {
        for slot in &self.shards {
            let p = slot.swap(ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // Safety: drop has exclusive access to self.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Track;

    fn span(t: f64) -> Span {
        Span {
            track: Track { rank: 0, worker: 0 },
            name: "x",
            start_us: t,
            dur_us: 1.0,
            key: None,
            link: crate::span::SpanLink::NONE,
        }
    }

    #[test]
    fn records_and_drains() {
        let r = ShardedRecorder::new(4, ClockDomain::Virtual);
        r.record_span(span(1.0));
        r.record_span(span(2.0));
        r.add_count("hits", 3);
        r.add_count("hits", 4);
        let trace = r.drain();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.counters["hits"], 7);
        assert!(r.drain().spans.is_empty(), "drain leaves the recorder empty");
    }

    #[test]
    fn same_thread_preserves_order() {
        let r = ShardedRecorder::new(1, ClockDomain::Virtual);
        for i in 0..100 {
            r.record_span(span(i as f64));
        }
        let trace = r.drain();
        let starts: Vec<f64> = trace.spans.iter().map(|s| s.start_us).collect();
        assert_eq!(starts, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }
}
