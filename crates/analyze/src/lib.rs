//! Post-mortem analysis over the workspace's observability artifacts.
//!
//! `paratreet-analyze` ingests the three files every engine and the
//! query service can export — a Chrome trace (`--trace-out`), a flat
//! metrics dump (`--metrics-out`), and a flight-recorder time series
//! (`--timeseries-out`) — and turns them into the paper's performance
//! views without re-running anything:
//!
//! * [`profile`] — per-track utilization profiles (the Fig. 9 time
//!   profile analog: busy fraction per time slice per worker track)
//!   and grain-size histograms per span name (Fig. 11's grain story).
//! * [`critical`] — greedy critical-path extraction: walk back from
//!   the last-finishing span through latest-ending predecessors, which
//!   on a DES trace recovers the phase chain that bounds the makespan.
//! * [`requests`] — causal request chains re-assembled from span
//!   links, and p999 exemplar resolution: the metrics dump names one
//!   concrete tail request, this module finds its complete
//!   queued→admitted→pinned→executed→responded span tree.
//! * [`report`] — the assembled [`report::Analysis`]: a human-readable
//!   report, a deterministic JSON form (same inputs, same bytes), and
//!   the `--check` assertions CI leans on.
//!
//! Everything is a pure function of the input bytes: spans are
//! re-sorted into a total order on load, every map is ordered, and all
//! floats go through the shortest-round-trip writer — so analyzing the
//! same artifacts twice yields byte-identical output, and analyzing
//! two same-seed DES runs does too.

pub mod critical;
pub mod profile;
pub mod report;
pub mod requests;
pub mod trace;

pub use critical::{critical_path, CriticalPath};
pub use profile::{grain_sizes, utilization, GrainRow, TrackProfile, Utilization};
pub use report::{analyze, Analysis};
pub use requests::{request_chains, resolve_exemplar, RequestChain, STAGE_NAMES};
pub use trace::{parse_trace, SpanRec, TraceData};
