//! Cache traffic counters.
//!
//! These counters are the raw material for the scaling analyses: the
//! discrete-event machine model charges communication cost per request
//! and per byte, and Fig. 3's three cache models differ exactly in how
//! many requests they send and how insertions serialise.

use paratreet_telemetry::{MetricSource, MetricsRegistry};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing one cache's traffic. All methods are
/// thread-safe; relaxed ordering suffices because the counters carry no
/// synchronisation responsibility.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Remote fetch requests actually sent.
    pub requests_sent: AtomicU64,
    /// Requests for keys that were already in flight (absorbed by the
    /// `requested` flag — the dedup that per-thread caches lose).
    pub requests_deduped: AtomicU64,
    /// Fill fragments inserted.
    pub fills_inserted: AtomicU64,
    /// Fills whose root was already materialised (idempotent duplicate
    /// deliveries, e.g. under fault injection).
    pub fills_duplicate: AtomicU64,
    /// Total bytes of fill payloads received.
    pub bytes_received: AtomicU64,
    /// Nodes materialised from fills.
    pub nodes_inserted: AtomicU64,
    /// Particles materialised from fills.
    pub particles_inserted: AtomicU64,
    /// Traversal continuations parked waiting for remote data.
    pub waiters_parked: AtomicU64,
    /// Continuations resumed by fills.
    pub waiters_resumed: AtomicU64,
}

impl CacheStats {
    /// A zeroed counter block.
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a counter.
    #[inline]
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// A plain-value snapshot for reporting.
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            requests_sent: Self::get(&self.requests_sent),
            requests_deduped: Self::get(&self.requests_deduped),
            fills_inserted: Self::get(&self.fills_inserted),
            fills_duplicate: Self::get(&self.fills_duplicate),
            bytes_received: Self::get(&self.bytes_received),
            nodes_inserted: Self::get(&self.nodes_inserted),
            particles_inserted: Self::get(&self.particles_inserted),
            waiters_parked: Self::get(&self.waiters_parked),
            waiters_resumed: Self::get(&self.waiters_resumed),
        }
    }
}

/// Plain-value copy of [`CacheStats`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CacheStatsSnapshot {
    /// See [`CacheStats::requests_sent`].
    pub requests_sent: u64,
    /// See [`CacheStats::requests_deduped`].
    pub requests_deduped: u64,
    /// See [`CacheStats::fills_inserted`].
    pub fills_inserted: u64,
    /// See [`CacheStats::fills_duplicate`].
    pub fills_duplicate: u64,
    /// See [`CacheStats::bytes_received`].
    pub bytes_received: u64,
    /// See [`CacheStats::nodes_inserted`].
    pub nodes_inserted: u64,
    /// See [`CacheStats::particles_inserted`].
    pub particles_inserted: u64,
    /// See [`CacheStats::waiters_parked`].
    pub waiters_parked: u64,
    /// See [`CacheStats::waiters_resumed`].
    pub waiters_resumed: u64,
}

impl CacheStatsSnapshot {
    /// Element-wise sum, for aggregating across ranks.
    pub fn merge(&mut self, o: &CacheStatsSnapshot) {
        self.requests_sent += o.requests_sent;
        self.requests_deduped += o.requests_deduped;
        self.fills_inserted += o.fills_inserted;
        self.fills_duplicate += o.fills_duplicate;
        self.bytes_received += o.bytes_received;
        self.nodes_inserted += o.nodes_inserted;
        self.particles_inserted += o.particles_inserted;
        self.waiters_parked += o.waiters_parked;
        self.waiters_resumed += o.waiters_resumed;
    }
}

impl MetricSource for CacheStatsSnapshot {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.requests_sent"), self.requests_sent);
        registry.set_u64(format!("{prefix}.requests_deduped"), self.requests_deduped);
        registry.set_u64(format!("{prefix}.fills_inserted"), self.fills_inserted);
        registry.set_u64(format!("{prefix}.fills_duplicate"), self.fills_duplicate);
        registry.set_u64(format!("{prefix}.bytes_received"), self.bytes_received);
        registry.set_u64(format!("{prefix}.nodes_inserted"), self.nodes_inserted);
        registry.set_u64(format!("{prefix}.particles_inserted"), self.particles_inserted);
        registry.set_u64(format!("{prefix}.waiters_parked"), self.waiters_parked);
        registry.set_u64(format!("{prefix}.waiters_resumed"), self.waiters_resumed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = CacheStats::new();
        CacheStats::add(&s.requests_sent, 3);
        CacheStats::add(&s.bytes_received, 100);
        let snap = s.snapshot();
        assert_eq!(snap.requests_sent, 3);
        assert_eq!(snap.bytes_received, 100);
        assert_eq!(snap.fills_inserted, 0);
    }

    #[test]
    fn snapshots_merge() {
        let mut a =
            CacheStatsSnapshot { requests_sent: 1, bytes_received: 10, ..Default::default() };
        let b = CacheStatsSnapshot { requests_sent: 2, waiters_parked: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.requests_sent, 3);
        assert_eq!(a.bytes_received, 10);
        assert_eq!(a.waiters_parked, 5);
    }
}
