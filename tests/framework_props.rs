//! Framework-level properties: particle conservation through steps,
//! deterministic replay, split-bucket bookkeeping, and the
//! Partitions–Subtrees binding optimisation.

use paratreet_apps::gravity::{CentroidData, GravityVisitor};
use paratreet_core::{Configuration, DecompType, Framework, TraversalKind};
use paratreet_particles::{gen, Particle};
use paratreet_tree::TreeType;
use proptest::prelude::*;

fn step_once(
    particles: Vec<Particle>,
    config: Configuration,
) -> (Vec<Particle>, paratreet_core::StepReport) {
    let mut fw: Framework<CentroidData> = Framework::new(config, particles);
    let visitor = GravityVisitor::default();
    let (_, report) = fw.step(|s| {
        s.traverse(&visitor, TraversalKind::TopDown);
    });
    (fw.particles().to_vec(), report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn particles_are_conserved_through_steps(
        n in 5usize..300,
        seed in 0u64..500,
        tree_idx in 0usize..3,
        decomp_idx in 0usize..4,
        n_subtrees in 1usize..20,
        n_partitions in 1usize..20,
    ) {
        let config = Configuration {
            tree_type: [TreeType::Octree, TreeType::KdTree, TreeType::LongestDim][tree_idx],
            decomp_type: [DecompType::Sfc, DecompType::Oct, DecompType::Kd, DecompType::LongestDim][decomp_idx],
            bucket_size: 8,
            n_subtrees,
            n_partitions,
            ..Default::default()
        };
        let particles = gen::clustered(n, 2, seed, 1.0, 1.0);
        let mut ids: Vec<u64> = particles.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        let (after, report) = step_once(particles, config);
        let mut ids_after: Vec<u64> = after.iter().map(|p| p.id).collect();
        ids_after.sort_unstable();
        prop_assert_eq!(ids, ids_after, "no particle may be lost or duplicated");
        prop_assert!(report.n_buckets >= report.n_split_leaves);
        prop_assert!(report.n_subtrees >= 1);
    }

    #[test]
    fn steps_are_deterministic(n in 20usize..200, seed in 0u64..500) {
        let config = Configuration { bucket_size: 8, n_subtrees: 6, n_partitions: 9, ..Default::default() };
        let particles = gen::uniform_cube(n, seed, 1.0, 1.0);
        let (a, ra) = step_once(particles.clone(), config.clone());
        let (b, rb) = step_once(particles, config);
        prop_assert_eq!(ra.counts, rb.counts);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.acc, y.acc);
        }
    }

    #[test]
    fn matched_splitters_never_split_buckets(
        n in 50usize..400,
        seed in 0u64..500,
    ) {
        // When Partitions and Subtrees use the same (octree) splitters,
        // "buckets are never split up" (§II-C-1): every tree leaf maps
        // into exactly one Partition.
        let config = Configuration {
            tree_type: TreeType::Octree,
            decomp_type: DecompType::Oct,
            bucket_size: 8,
            n_subtrees: 8,
            n_partitions: 8,
            ..Default::default()
        };
        prop_assert!(config.partitions_match_subtrees());
        let particles = gen::uniform_cube(n, seed, 1.0, 1.0);
        let (_, report) = step_once(particles, config);
        prop_assert_eq!(report.n_split_leaves, 0, "aligned splitters must not split buckets");
    }

    #[test]
    fn mismatched_splitters_split_only_buckets(
        n in 200usize..500,
        seed in 0u64..500,
    ) {
        // SFC partitions over an octree: splits happen (that is the
        // model working), and the number of split leaves stays below the
        // partition count's order — only boundary buckets split.
        let n_partitions = 12usize;
        let config = Configuration {
            tree_type: TreeType::Octree,
            decomp_type: DecompType::Sfc,
            bucket_size: 8,
            n_subtrees: 4,
            n_partitions,
            ..Default::default()
        };
        let particles = gen::uniform_cube(n, seed, 1.0, 1.0);
        let (_, report) = step_once(particles, config);
        // Each of the 11 interior SFC boundaries can split at most one
        // leaf (boundaries are points on the Morton line).
        prop_assert!(
            report.n_split_leaves < n_partitions,
            "{} split leaves for {} partitions",
            report.n_split_leaves,
            n_partitions
        );
    }
}

#[test]
fn multiple_traversals_share_the_sources() {
    // Two traversals in one step see the same start-of-step sources;
    // accumulators add up across traversals.
    let particles = gen::uniform_cube(300, 9, 1.0, 1.0);
    let config = Configuration { bucket_size: 8, ..Default::default() };
    let visitor = GravityVisitor::default();

    let mut fw: Framework<CentroidData> = Framework::new(config.clone(), particles.clone());
    fw.step(|s| {
        s.traverse(&visitor, TraversalKind::TopDown);
        s.traverse(&visitor, TraversalKind::TopDown);
    });
    let twice = fw.particles().to_vec();

    let mut fw1: Framework<CentroidData> = Framework::new(config, particles);
    fw1.step(|s| {
        s.traverse(&visitor, TraversalKind::TopDown);
    });
    let once = fw1.particles().to_vec();

    for (a, b) in twice.iter().zip(&once) {
        assert_eq!(a.id, b.id);
        assert!((a.acc - b.acc * 2.0).norm() <= 1e-12 * b.acc.norm().max(1e-30));
    }
}

#[test]
fn empty_and_single_particle_steps_work() {
    let config = Configuration::default();
    let (after, report) = step_once(vec![Particle::point_mass(7, 1.0, Default::default())], config);
    assert_eq!(after.len(), 1);
    assert_eq!(after[0].id, 7);
    // The counter counts the offered (self) pair, but the kernel skips
    // it: no force on a lone particle.
    assert_eq!(report.counts.leaf_interactions, 1);
    assert_eq!(after[0].acc, paratreet_geometry::Vec3::ZERO);
}
