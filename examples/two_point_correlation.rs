//! Two-point correlation function of a clustered field — the
//! "n-point correlation" cosmology workload, computed by tree pair
//! counting with the Peebles–Hauser estimator.
//!
//! ```text
//! cargo run --release --example two_point_correlation -- [n] [bins]
//! ```

use paratreet::core_api::{Configuration, TraversalKind};
use paratreet_apps::correlation::{two_point_correlation, SeparationBins};
use paratreet_particles::gen;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let n_bins: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    let data = gen::clustered(n, 5, 11, 1.0, 1.0);
    let random = gen::uniform_cube(n, 997, 1.0, 1.0);
    let bins = SeparationBins::logarithmic(0.01, 1.0, n_bins);
    let config =
        Configuration { bucket_size: 16, n_subtrees: 8, n_partitions: 8, ..Default::default() };

    let xi = two_point_correlation(data, random, &bins, config, TraversalKind::TopDown);

    println!("two-point correlation of a {n}-particle clustered field");
    println!("{:>10} {:>12}", "r", "xi(r)");
    for (c, v) in bins.centers().iter().zip(&xi) {
        let bar_len = ((v.max(0.0).ln_1p() * 8.0) as usize).min(40);
        println!("{c:>10.4} {v:>12.3}  {}", "#".repeat(bar_len));
    }
    println!("\nclustered fields correlate strongly at small separations (ξ ≫ 0)");
    println!("and decorrelate at the box scale (ξ → 0) — exactly what the curve shows.");
}
