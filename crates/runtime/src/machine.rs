//! Machine descriptions, including the Table I supercomputers.
//!
//! A [`MachineSpec`] is everything the discrete-event simulator needs to
//! charge time: per-node worker count, a relative compute speed (scaled
//! by clock frequency against the Stampede2 Skylake baseline the kernel
//! costs were calibrated on), and a communication model (per-message
//! latency, per-byte time, sender injection serialisation).

use serde::{Deserialize, Serialize};

/// A distributed machine configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable name ("Summit", "Stampede2", "Bridges2", ...).
    pub name: String,
    /// Number of nodes (processes; one rank per node, as the paper runs
    /// one process per node with node-wide tree aggregation).
    pub nodes: usize,
    /// Worker threads per rank.
    pub workers_per_rank: usize,
    /// CPU type label for Table I output.
    pub cpu_type: String,
    /// Core clock in GHz (scales compute cost).
    pub clock_ghz: f64,
    /// Communication layer label for Table I output.
    pub comm_layer: String,
    /// One-way small-message latency in seconds.
    pub latency_s: f64,
    /// Per-byte transfer time in seconds (1/bandwidth).
    pub byte_time_s: f64,
}

/// The Skylake clock the kernel cost constants are calibrated against.
pub const BASELINE_CLOCK_GHZ: f64 = 2.1;

impl MachineSpec {
    /// Total workers across the machine.
    pub fn total_workers(&self) -> usize {
        self.nodes * self.workers_per_rank
    }

    /// Compute-cost multiplier relative to the calibration baseline
    /// (slower clock → larger multiplier).
    pub fn compute_scale(&self) -> f64 {
        BASELINE_CLOCK_GHZ / self.clock_ghz
    }

    /// Summit (ORNL): POWER9, 42 cores/node, 2-way SMT → 84 workers, UCX.
    /// The paper's Fig. 10 platform.
    pub fn summit(nodes: usize) -> MachineSpec {
        MachineSpec {
            name: "Summit".into(),
            nodes,
            workers_per_rank: 84,
            cpu_type: "POWER9".into(),
            clock_ghz: 3.1,
            comm_layer: "UCX".into(),
            latency_s: 1.5e-6,
            byte_time_s: 1.0 / 12.5e9, // ~100 Gb/s EDR
        }
    }

    /// Stampede2 SKX partition (TACC): Skylake, 48 cores/node, MPI.
    /// The paper's Figs. 3, 9, 11, 13 and Table II platform.
    pub fn stampede2(nodes: usize) -> MachineSpec {
        MachineSpec {
            name: "Stampede2".into(),
            nodes,
            workers_per_rank: 48,
            cpu_type: "Skylake".into(),
            clock_ghz: 2.1,
            comm_layer: "MPI".into(),
            latency_s: 2.0e-6,
            byte_time_s: 1.0 / 12.5e9,
        }
    }

    /// Stampede2 configured as the paper runs Fig. 3: 24 cores to a
    /// process, one thread per core (two ranks per node).
    pub fn stampede2_24(processes: usize) -> MachineSpec {
        MachineSpec { workers_per_rank: 24, ..MachineSpec::stampede2(processes) }
    }

    /// Bridges2 regular memory partition (PSC): EPYC 7742, 128
    /// cores/node, InfiniBand. The paper's Fig. 12 platform.
    pub fn bridges2(nodes: usize) -> MachineSpec {
        MachineSpec {
            name: "Bridges2".into(),
            nodes,
            workers_per_rank: 128,
            cpu_type: "EPYC 7742".into(),
            clock_ghz: 2.25,
            comm_layer: "Infiniband".into(),
            latency_s: 1.2e-6,
            byte_time_s: 1.0 / 25.0e9, // HDR-200
        }
    }

    /// A tiny machine for unit tests: deterministic and fast.
    pub fn test(nodes: usize, workers_per_rank: usize) -> MachineSpec {
        MachineSpec {
            name: "test".into(),
            nodes,
            workers_per_rank,
            cpu_type: "test".into(),
            clock_ghz: BASELINE_CLOCK_GHZ,
            comm_layer: "channel".into(),
            latency_s: 1.0e-6,
            byte_time_s: 1.0e-10,
        }
    }

    /// The Table I rows, as (name, cores/node, cpu, clock, comm layer).
    pub fn table1() -> Vec<(String, usize, String, f64, String)> {
        [MachineSpec::summit(1), MachineSpec::stampede2(1), MachineSpec::bridges2(1)]
            .into_iter()
            .map(|m| {
                let physical = if m.name == "Summit" { 42 } else { m.workers_per_rank };
                (m.name, physical, m.cpu_type, m.clock_ghz, m.comm_layer)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let rows = MachineSpec::table1();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], ("Summit".into(), 42, "POWER9".into(), 3.1, "UCX".into()));
        assert_eq!(rows[1], ("Stampede2".into(), 48, "Skylake".into(), 2.1, "MPI".into()));
        assert_eq!(
            rows[2],
            ("Bridges2".into(), 128, "EPYC 7742".into(), 2.25, "Infiniband".into())
        );
    }

    #[test]
    fn compute_scale_is_relative_to_skylake() {
        assert_eq!(MachineSpec::stampede2(4).compute_scale(), 1.0);
        assert!(MachineSpec::summit(4).compute_scale() < 1.0); // faster clock
        let m = MachineSpec::bridges2(2);
        assert_eq!(m.total_workers(), 256);
    }

    #[test]
    fn summit_uses_smt2() {
        assert_eq!(MachineSpec::summit(1).workers_per_rank, 84);
    }

    #[test]
    fn fig3_config_runs_24_per_process() {
        let m = MachineSpec::stampede2_24(64);
        assert_eq!(m.workers_per_rank, 24);
        assert_eq!(m.total_workers(), 1536);
    }
}
