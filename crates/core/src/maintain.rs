//! Cross-iteration tree maintenance: the engine-facing half of the
//! incremental update subsystem.
//!
//! A [`TreeMaintainer`] owns one [`UpdatableTree`] per Subtree plus the
//! decomposition they were seeded from (universe, piece regions,
//! partitioner). Each iteration, [`TreeMaintainer::advance`] runs the
//! *batch* update cycle over disjoint Subtrees:
//!
//! 1. **Classify** — one pass per Subtree (in parallel) resyncs the
//!    integrated particle state and evicts everything that left its
//!    leaf's footprint.
//! 2. **Route** — escapees are grouped by destination Subtree into
//!    insert batches, each sorted by (SFC key, id) so application
//!    order is a canonical function of the particle state.
//! 3. **Apply** — each destination sieves its whole batch down in one
//!    group pass and repairs (split/merge/prune + `Data`
//!    re-accumulation along dirty paths), again in parallel over the
//!    disjoint Subtree slabs.
//! 4. **Rebalance** — weight-balance invariants, recomputed from the
//!    current trees every round, decide rebuilds: a median-split
//!    Subtree is rebuilt alone when an interior node violates the
//!    BB[α] criterion or its depth exceeds the α-balance bound;
//!    position-determined trees (octree, binary-oct) are never
//!    structurally rebuilt, because maintenance already reproduces
//!    exactly the structure a fresh build would.
//! 5. **Flatten** — each Subtree emits the canonical pre-order arena
//!    (in parallel), which drops into the unchanged leaf-sharing /
//!    cache / traversal pipeline.
//!
//! The whole tree is rebuilt and re-decomposed (fresh universe, pieces,
//! partitioner) when a particle leaves the universe box, the population
//! changes, or the max/mean Partition load exceeds
//! `imbalance_rebuild`. A structural [`UpdateError`] (stale slab,
//! population mismatch) is never fatal: the maintainer logs it and
//! falls back to the same full rebuild.
//!
//! All decisions are deterministic functions of the particle state —
//! parallel phases collect results in Subtree index order, so thread
//! count never changes the output — and a crash-recovery replay that
//! restores the maintained trees and re-runs the same inputs
//! reproduces the same structure.

use crate::config::{Configuration, DecompType, SfcCurve};
use crate::decomp::{decompose_within, universe_for, Partitioner, SubtreePiece};
use paratreet_geometry::{BoundingBox, NodeKey, Vec3};
use paratreet_particles::Particle;
use paratreet_telemetry::metrics::{MetricSource, MetricsRegistry};
use paratreet_tree::{BuiltTree, Data, TreeBuilder, UpdatableTree, UpdateError, UpdateStats};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Cumulative `tree.update.*` counters over the life of a maintainer.
#[derive(Clone, Copy, Debug, Default)]
pub struct UpdateTotals {
    /// Incremental advances performed (seeding not included).
    pub steps: u64,
    /// Particles whose position or mass changed across all advances.
    pub moved: u64,
    /// Particles patched in place (moved but stayed in their leaf).
    pub patched: u64,
    /// Particles that escaped their leaf bbox.
    pub escaped: u64,
    /// Escapees that crossed into a different Subtree.
    pub migrated: u64,
    /// Non-empty per-Subtree insert batches applied.
    pub batches: u64,
    /// Leaf splits performed by repair passes.
    pub splits: u64,
    /// Interior collapses performed by repair passes.
    pub merges: u64,
    /// Emptied regions pruned.
    pub pruned: u64,
    /// Nodes whose `Data` summary was re-accumulated.
    pub refreshed: u64,
    /// Single-Subtree rebuilds (weight-balance violations or uncovered
    /// adoptions).
    pub subtree_rebuilds: u64,
    /// Whole-tree rebuild + re-decomposition fallbacks.
    pub full_rebuilds: u64,
    /// Structural update errors recovered via full rebuild.
    pub update_errors: u64,
    /// Max/mean partition load after the most recent advance.
    pub last_imbalance: f64,
}

impl MetricSource for UpdateTotals {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.steps"), self.steps);
        registry.set_u64(format!("{prefix}.moved"), self.moved);
        registry.set_u64(format!("{prefix}.patched"), self.patched);
        registry.set_u64(format!("{prefix}.escaped"), self.escaped);
        registry.set_u64(format!("{prefix}.migrated"), self.migrated);
        registry.set_u64(format!("{prefix}.batches"), self.batches);
        registry.set_u64(format!("{prefix}.splits"), self.splits);
        registry.set_u64(format!("{prefix}.merges"), self.merges);
        registry.set_u64(format!("{prefix}.pruned"), self.pruned);
        registry.set_u64(format!("{prefix}.refreshed"), self.refreshed);
        registry.set_u64(format!("{prefix}.subtree_rebuilds"), self.subtree_rebuilds);
        registry.set_u64(format!("{prefix}.full_rebuilds"), self.full_rebuilds);
        registry.set_u64(format!("{prefix}.update_errors"), self.update_errors);
        registry.set_f64(format!("{prefix}.last_imbalance"), self.last_imbalance);
    }
}

/// What one [`TreeMaintainer::advance`] did — consumed by the engines
/// for telemetry and (in the DES engine) virtual-time cost charging.
#[derive(Clone, Debug, Default)]
pub struct MaintainRound {
    /// Summed per-subtree update counters for this round.
    pub stats: UpdateStats,
    /// Escapees that crossed Subtree boundaries.
    pub n_migrated: u64,
    /// Non-empty per-Subtree insert batches applied this round.
    pub n_batches: u64,
    /// `(from_subtree, to_subtree, count)` migration edges, ascending.
    pub migrations: Vec<(u32, u32, u32)>,
    /// Per-subtree structural work units (evictions + insertions +
    /// splits + merges + summary refreshes) — the DES engine's update
    /// task cost driver.
    pub per_subtree_work: Vec<u64>,
    /// Subtrees rebuilt alone this round (weight balance or adoption).
    pub rebuilt_subtrees: Vec<u32>,
    /// The whole-tree fallback fired (universe escape or imbalance).
    pub full_rebuild: bool,
    /// Max/mean partition load measured this round.
    pub imbalance: f64,
}

/// Piece metadata retained after the builds consume the decomposition.
#[derive(Clone, Copy, Debug)]
struct PieceMeta {
    key: NodeKey,
    bbox: BoundingBox,
    depth: u32,
}

/// Max/mean particle load across Partitions. Degenerate inputs — no
/// partitions at all (a rank owning zero Subtrees after a
/// shrinking-population fallback) or zero total load — report perfect
/// balance rather than panicking on an empty `max()`.
pub(crate) fn partition_imbalance(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if loads.is_empty() || total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    *loads.iter().max().expect("non-empty loads") as f64 / mean
}

/// Runs `f(index, item, arg)` over the zipped items on up to `threads`
/// scoped OS threads (the workspace `rayon` is a sequential shim, so
/// real parallelism comes from `std::thread`). Items are chunked
/// contiguously and results are returned in index order, so the output
/// — and everything downstream — is independent of thread count.
fn par_map_mut<T, U, R>(
    threads: usize,
    items: &mut [T],
    args: Vec<U>,
    f: impl Fn(usize, &mut T, U) -> R + Sync,
) -> Vec<R>
where
    T: Send,
    U: Send,
    R: Send,
{
    debug_assert_eq!(items.len(), args.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter_mut().zip(args).enumerate().map(|(i, (t, a))| f(i, t, a)).collect();
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    let mut arg_chunks: Vec<Vec<U>> = Vec::new();
    let mut rest = args;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        arg_chunks.push(std::mem::replace(&mut rest, tail));
    }
    arg_chunks.push(rest);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut base = 0usize;
        for (items_chunk, args_chunk) in items.chunks_mut(chunk).zip(arg_chunks) {
            let f = &f;
            let start = base;
            base += items_chunk.len();
            handles.push(s.spawn(move || {
                items_chunk
                    .iter_mut()
                    .zip(args_chunk)
                    .enumerate()
                    .map(|(k, (t, a))| f(start + k, t, a))
                    .collect::<Vec<R>>()
            }));
        }
        handles.into_iter().flat_map(|h| h.join().expect("maintenance worker panicked")).collect()
    })
}

/// Maintains the global tree across iterations for one engine. Seeded
/// once with a full decompose + build; advanced once per iteration with
/// the integrated particle state.
pub struct TreeMaintainer<D: Data> {
    config: Configuration,
    universe: BoundingBox,
    pieces: Vec<PieceMeta>,
    trees: Vec<UpdatableTree<D>>,
    partitioner: Partitioner,
    n_partitions: usize,
    totals: UpdateTotals,
    /// Rayon-style parallelism for the seed/rebuild builder paths.
    parallel: bool,
    /// Scoped-thread count for the batch classify/apply/flatten phases.
    threads: usize,
}

impl<D: Data> TreeMaintainer<D> {
    /// Full decompose + build, retaining everything needed to maintain
    /// the result. `config` must already carry any engine-raised
    /// `n_subtrees` / `n_partitions` minimums. With
    /// `incremental.universe_pad == 0` the returned trees are
    /// bit-identical to a fresh [`crate::decompose`] + build pass.
    /// `parallel = false` (the deterministic DES engine) also pins the
    /// batch phases to one thread.
    pub fn seed(
        config: &Configuration,
        particles: Vec<Particle>,
        parallel: bool,
    ) -> (TreeMaintainer<D>, Vec<BuiltTree<D>>) {
        let threads = if parallel {
            match config.incremental.batch_threads {
                0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
                t => t,
            }
        } else {
            1
        };
        let mut m = TreeMaintainer {
            config: config.clone(),
            universe: BoundingBox::empty(),
            pieces: Vec::new(),
            trees: Vec::new(),
            partitioner: Partitioner::KeyRanges { splitters: Vec::new() },
            n_partitions: config.n_partitions,
            totals: UpdateTotals::default(),
            parallel,
            threads,
        };
        let built = m.reseed(particles);
        (m, built)
    }

    /// The Partition assignment for the maintained decomposition.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Number of Partitions the maintained partitioner produces.
    pub fn n_partitions(&self) -> usize {
        self.n_partitions
    }

    /// Number of Subtrees (stable between full rebuilds).
    pub fn n_subtrees(&self) -> usize {
        self.trees.len()
    }

    /// The maintained universe box.
    pub fn universe(&self) -> BoundingBox {
        self.universe
    }

    /// Cumulative `tree.update.*` counters.
    pub fn totals(&self) -> &UpdateTotals {
        &self.totals
    }

    /// Full decompose + build from scratch (seed and fallback path).
    fn reseed(&mut self, particles: Vec<Particle>) -> Vec<BuiltTree<D>> {
        let cfg = &self.config;
        let universe = universe_for(&particles, cfg, cfg.incremental.universe_pad);
        let decomp = decompose_within(particles, cfg, universe);
        self.universe = decomp.universe;
        self.partitioner = decomp.partitioner;
        self.n_partitions = decomp.n_partitions;
        self.pieces = decomp
            .subtrees
            .iter()
            .map(|p| PieceMeta { key: p.key, bbox: p.bbox, depth: p.depth })
            .collect();
        let tree_type = cfg.tree_type;
        let bucket_size = cfg.bucket_size;
        let parallel = self.parallel;
        let build_one = |piece: SubtreePiece| {
            let builder = TreeBuilder {
                tree_type,
                bucket_size,
                parallel,
                root_key: piece.key,
                root_depth: piece.depth,
            };
            let bbox = piece.bbox;
            builder.build::<D>(piece.particles, bbox)
        };
        let built: Vec<BuiltTree<D>> = if parallel {
            decomp.subtrees.into_par_iter().map(build_one).collect()
        } else {
            decomp.subtrees.into_iter().map(build_one).collect()
        };
        self.trees = built
            .iter()
            .zip(&self.pieces)
            .map(|(t, p)| UpdatableTree::from_built(t, tree_type, bucket_size, p.depth))
            .collect();
        built
    }

    /// One incremental iteration. `master` is the integrated particle
    /// state in the order the previous trees' buckets tiled it (i.e.
    /// the concatenation of the returned trees' particle arrays).
    /// Returns the flattened trees for this iteration plus what was
    /// done to produce them. Falls back to a transparent whole-tree
    /// rebuild when a particle leaves the universe, the partition load
    /// imbalance crosses its threshold, or the maintained structure
    /// reports an [`UpdateError`].
    pub fn advance(&mut self, mut master: Vec<Particle>) -> (Vec<BuiltTree<D>>, MaintainRound) {
        let inc = self.config.incremental;
        self.totals.steps += 1;
        let mut round = MaintainRound::default();

        // Population change (e.g. collisional merges or accretion): the
        // maintained bucket slices no longer tile the master array, so
        // patching is meaningless — re-decompose over the new set.
        let maintained: usize = self.trees.iter().map(|t| t.n_particles() as usize).sum();
        if master.len() != maintained {
            return self.fall_back(master, round);
        }

        // One fused pass over the integrated state: detect universe
        // escape (the maintained root regions no longer cover the
        // particle set — re-decompose over a fresh padded box) and
        // refresh SFC keys in place (same keying rule as decompose) so
        // the retained partitioner, leaf sharing, and batch sort order
        // stay meaningful.
        let hilbert =
            self.config.sfc == SfcCurve::Hilbert && self.config.decomp_type == DecompType::Sfc;
        let mut escaped_universe = false;
        for p in master.iter_mut() {
            if !self.universe.contains(p.pos) {
                // Keys are reassigned against the fresh universe inside
                // the fallback's decompose, so stop refreshing here.
                escaped_universe = true;
                break;
            }
            p.key = if hilbert {
                paratreet_geometry::hilbert_key(p.pos, &self.universe)
            } else {
                paratreet_geometry::morton_key(p.pos, &self.universe)
            };
        }
        if escaped_universe {
            return self.fall_back(master, round);
        }

        // `master` stays alive through the patch phases: if the
        // maintained structure turns out to be inconsistent we recover
        // by rebuilding from it instead of aborting the run.
        match self.advance_patched(&master, &mut round) {
            Ok((flats, loads)) => {
                drop(master);
                let imbalance = partition_imbalance(&loads);
                round.imbalance = imbalance;
                self.totals.last_imbalance = imbalance;
                self.accumulate(&round);
                if imbalance > inc.imbalance_rebuild {
                    let master: Vec<Particle> =
                        flats.into_iter().flat_map(|f| f.particles).collect();
                    return self.fall_back(master, round);
                }
                (flats, round)
            }
            Err(e) => {
                eprintln!("tree update error ({e}); falling back to a full rebuild");
                self.totals.update_errors += 1;
                self.fall_back(master, round)
            }
        }
    }

    /// The batch patch phases (classify → route → apply → rebalance →
    /// flatten). Any structural error aborts cleanly back to the
    /// caller, which still owns the master particle state. Also returns
    /// the per-Partition loads, counted while the flattened particles
    /// are still warm in cache.
    fn advance_patched(
        &mut self,
        master: &[Particle],
        round: &mut MaintainRound,
    ) -> Result<(Vec<BuiltTree<D>>, Vec<u64>), UpdateError> {
        let inc = self.config.incremental;
        let n_trees = self.trees.len();
        round.per_subtree_work = vec![0u64; n_trees];
        // Phase 1 — classify: resync + evict in one pass per Subtree,
        // in parallel over the disjoint slabs.
        let counts: Vec<usize> = self.trees.iter().map(|t| t.n_particles() as usize).collect();
        let mut slices: Vec<&[Particle]> = Vec::with_capacity(n_trees);
        let mut off = 0usize;
        for &c in &counts {
            slices.push(&master[off..off + c]);
            off += c;
        }
        debug_assert_eq!(off, master.len());
        let classified =
            par_map_mut(self.threads, &mut self.trees, slices, |_, t, s| t.classify(s));
        let mut escapees_per_tree = Vec::with_capacity(n_trees);
        for (si, c) in classified.into_iter().enumerate() {
            let c = c?;
            round.stats.n_moved += c.n_moved;
            round.stats.n_escaped += c.escapees.len() as u64;
            round.per_subtree_work[si] += c.escapees.len() as u64;
            escapees_per_tree.push(c.escapees);
        }
        // Phase 2 — route: group escapees by the Subtree whose region
        // now contains them (most stay home; boundary crossers
        // migrate). Each destination batch is sorted by (SFC key, id)
        // so its application order is a canonical function of the
        // particle state, not of which leaves the escapees came from.
        let mut batches: Vec<Vec<Particle>> = vec![Vec::new(); n_trees];
        let mut homeless: BTreeMap<usize, Vec<Particle>> = BTreeMap::new();
        let mut migrations = vec![0u32; n_trees * n_trees];
        for (si, escaped) in escapees_per_tree.into_iter().enumerate() {
            for p in escaped {
                let (dest, covered) = self.route(p.pos, si);
                if dest != si {
                    migrations[si * n_trees + dest] += 1;
                    round.n_migrated += 1;
                }
                round.stats.n_inserted += 1;
                round.per_subtree_work[dest] += 1;
                if covered {
                    batches[dest].push(p);
                } else {
                    // A region no piece covers: the destination grows
                    // its box over these and rebuilds (below).
                    homeless.entry(dest).or_default().push(p);
                }
            }
        }
        round.migrations = migrations
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| ((i / n_trees) as u32, (i % n_trees) as u32, n))
            .collect();
        for b in batches.iter_mut() {
            // Unstable sort is deterministic here: (key, id) is a total
            // order because ids are unique.
            b.sort_unstable_by_key(|p| (p.key, p.id));
        }
        round.n_batches = batches.iter().filter(|b| !b.is_empty()).count() as u64;
        self.totals.batches += round.n_batches;
        // Phase 3 — apply: sieve each destination's batch down in one
        // group pass, then repair, in parallel over disjoint Subtrees.
        let alpha = inc.balance_alpha;
        let applied = par_map_mut(self.threads, &mut self.trees, batches, |_, t, b| {
            t.insert_batch(b)?;
            t.repair(alpha)
        });
        let mut unbalanced = vec![false; n_trees];
        for (si, rep) in applied.into_iter().enumerate() {
            let rep = rep?;
            round.per_subtree_work[si] +=
                rep.stats.n_splits + rep.stats.n_merges + rep.stats.n_refreshed;
            round.stats += rep.stats;
            unbalanced[si] = rep.unbalanced;
        }
        // Escapees whose positions no piece covers cannot be sieved
        // (every leaf box must contain its particles): the adopting
        // Subtree grows its region box over them and rebuilds — after
        // batch apply, so the rebuild captures this round's inserts.
        for (dest, extra) in homeless {
            self.rebuild_subtree(dest, extra)?;
            unbalanced[dest] = false;
            round.rebuilt_subtrees.push(dest as u32);
            self.totals.subtree_rebuilds += 1;
        }

        // Phase 4 — weight-balance rebuilds. Both criteria are
        // recomputed from the current tree every round (never carried
        // in as-built counters, which go stale after a large absorbed
        // batch): the α child-weight check from this repair pass, and
        // the α depth bound against the current population.
        for (si, &unb) in unbalanced.iter().enumerate() {
            if round.rebuilt_subtrees.contains(&(si as u32)) {
                continue;
            }
            if unb || self.depth_unbalanced(si) {
                self.rebuild_subtree(si, Vec::new())?;
                round.rebuilt_subtrees.push(si as u32);
                self.totals.subtree_rebuilds += 1;
            }
        }

        // Phase 5 — flatten for the pipeline, in parallel, counting
        // Partition loads in the same pass (the flattened particles are
        // still warm in cache).
        let partitioner = &self.partitioner;
        let n_partitions = self.n_partitions;
        let flats = par_map_mut(self.threads, &mut self.trees, vec![(); n_trees], |_, t, ()| {
            let flat = t.flatten()?;
            let mut loads = vec![0u64; n_partitions];
            for p in &flat.particles {
                loads[partitioner.assign(p) as usize] += 1;
            }
            Ok((flat, loads))
        });
        let mut out = Vec::with_capacity(n_trees);
        let mut loads = vec![0u64; n_partitions];
        for r in flats {
            let (flat, l) = r?;
            for (dst, v) in loads.iter_mut().zip(l) {
                *dst += v;
            }
            out.push(flat);
        }
        Ok((out, loads))
    }

    /// Whether a median-split Subtree's depth exceeds the α-balance
    /// bound `log(n/bucket) / log(1/α)` by more than the configured
    /// slack. Position-determined trees never qualify: their depth
    /// follows local density by construction.
    fn depth_unbalanced(&self, si: usize) -> bool {
        if !self.config.tree_type.is_median_split() {
            return false;
        }
        let inc = self.config.incremental;
        let n = self.trees[si].n_particles() as f64;
        let bucket = self.config.bucket_size.max(1) as f64;
        let ideal = (n / bucket).max(1.0).log2() / (1.0 / inc.balance_alpha).log2().max(1e-9);
        (self.trees[si].max_depth() as f64) > ideal + inc.balance_depth_slack as f64
    }

    /// Whole-tree rebuild + re-decomposition fallback, transparent to
    /// the caller (the returned trees slot into the pipeline as usual).
    fn fall_back(
        &mut self,
        particles: Vec<Particle>,
        mut round: MaintainRound,
    ) -> (Vec<BuiltTree<D>>, MaintainRound) {
        let built = self.reseed(particles);
        round.full_rebuild = true;
        round.rebuilt_subtrees.clear();
        round.per_subtree_work = vec![0u64; built.len()];
        self.totals.full_rebuilds += 1;
        (built, round)
    }

    /// Folds a round's per-step counters into the cumulative totals.
    fn accumulate(&mut self, round: &MaintainRound) {
        let s = &round.stats;
        self.totals.moved += s.n_moved;
        self.totals.patched += s.n_moved.saturating_sub(s.n_escaped);
        self.totals.escaped += s.n_escaped;
        self.totals.migrated += round.n_migrated;
        self.totals.splits += s.n_splits;
        self.totals.merges += s.n_merges;
        self.totals.pruned += s.n_pruned;
        self.totals.refreshed += s.n_refreshed;
    }

    /// The Subtree whose region contains `pos`, preferring the source
    /// Subtree on shared faces (avoids spurious boundary migrations).
    /// Pieces tile the universe, so the nearest-region fallback only
    /// guards float edge cases.
    fn route(&self, pos: Vec3, src: usize) -> (usize, bool) {
        if self.pieces[src].bbox.contains(pos) {
            return (src, true);
        }
        for (i, piece) in self.pieces.iter().enumerate() {
            if piece.bbox.contains(pos) {
                return (i, true);
            }
        }
        // The position fell into a region no piece covers (an octant
        // that held no particles at decomposition time): the nearest
        // piece adopts it, growing its region box.
        let mut best = src;
        let mut best_d = f64::INFINITY;
        for (i, piece) in self.pieces.iter().enumerate() {
            let d = piece.bbox.dist_sq_to(pos);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        (best, false)
    }

    /// Rebuilds one Subtree from its current particles (balance
    /// policy), plus `outsiders` — escapees whose positions no piece
    /// covers; the region box grows over them first so every leaf box
    /// still contains its particles.
    fn rebuild_subtree(&mut self, si: usize, outsiders: Vec<Particle>) -> Result<(), UpdateError> {
        for p in &outsiders {
            self.pieces[si].bbox.grow(p.pos);
        }
        let piece = self.pieces[si];
        let mut particles = self.trees[si].all_particles()?;
        particles.extend(outsiders);
        let builder = TreeBuilder {
            tree_type: self.config.tree_type,
            bucket_size: self.config.bucket_size,
            parallel: self.parallel,
            root_key: piece.key,
            root_depth: piece.depth,
        };
        let built = builder.build::<D>(particles, piece.bbox);
        self.trees[si] = UpdatableTree::from_built(
            &built,
            self.config.tree_type,
            self.config.bucket_size,
            piece.depth,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IncrementalConfig;
    use paratreet_particles::gen;
    use paratreet_tree::{CountData, TreeType};

    fn config() -> Configuration {
        Configuration {
            n_subtrees: 6,
            n_partitions: 4,
            bucket_size: 8,
            incremental: IncrementalConfig { enabled: true, ..Default::default() },
            ..Default::default()
        }
    }

    fn masters(trees: &[BuiltTree<CountData>]) -> Vec<Particle> {
        trees.iter().flat_map(|t| t.particles.iter().copied()).collect()
    }

    #[test]
    fn seed_then_zero_motion_advance_is_identical() {
        let mut cfg = config();
        cfg.incremental.universe_pad = 0.0;
        let ps = gen::uniform_cube(800, 5, 1.0, 1.0);
        let (mut m, seeded) = TreeMaintainer::<CountData>::seed(&cfg, ps, false);
        let master = masters(&seeded);
        let (trees, round) = m.advance(master.clone());
        assert!(!round.full_rebuild);
        assert_eq!(round.stats.n_moved, 0);
        assert_eq!(round.stats.n_escaped, 0);
        assert_eq!(round.n_batches, 0);
        assert_eq!(trees.len(), seeded.len());
        for (a, b) in trees.iter().zip(&seeded) {
            assert_eq!(a.nodes.len(), b.nodes.len());
            for (x, y) in a.nodes.iter().zip(&b.nodes) {
                assert_eq!(x.key, y.key);
                assert_eq!(x.shape, y.shape);
                assert_eq!(x.data, y.data);
            }
            assert_eq!(a.particles, b.particles);
        }
    }

    #[test]
    fn motion_advance_conserves_and_validates() {
        let cfg = config();
        let ps = gen::clustered(1500, 3, 11, 1.0, 1.0);
        let (mut m, seeded) = TreeMaintainer::<CountData>::seed(&cfg, ps, false);
        let mut master = masters(&seeded);
        let n0 = master.len();
        let mut rounds_with_migration = 0;
        let mut rounds_with_batches = 0;
        for step in 0..4 {
            // Drift everything along +x: particles cross leaf and
            // Subtree boundaries; the universe pad absorbs the first
            // steps, then the full-rebuild fallback re-decomposes.
            let extent = m.universe().hi.x - m.universe().lo.x;
            for p in master.iter_mut() {
                p.pos.x += 0.015 * extent;
            }
            let (trees, round) = m.advance(master);
            assert_eq!(
                trees.iter().map(|t| t.particles.len()).sum::<usize>(),
                n0,
                "step {step} lost particles"
            );
            for t in &trees {
                t.validate(cfg.bucket_size).unwrap();
            }
            if round.n_migrated > 0 {
                rounds_with_migration += 1;
            }
            if round.n_batches > 0 {
                rounds_with_batches += 1;
            }
            master = masters(&trees);
        }
        assert!(rounds_with_migration > 0, "drift should migrate particles");
        assert!(rounds_with_batches > 0, "drift should produce insert batches");
        assert_eq!(m.totals().steps, 4);
        assert!(m.totals().moved > 0);
        assert!(m.totals().batches > 0);
    }

    #[test]
    fn universe_escape_falls_back_to_full_rebuild() {
        let mut cfg = config();
        cfg.incremental.universe_pad = 0.0;
        let ps = gen::uniform_cube(400, 7, 1.0, 1.0);
        let (mut m, seeded) = TreeMaintainer::<CountData>::seed(&cfg, ps, false);
        let mut master = masters(&seeded);
        // Fling one particle far outside the box.
        master[0].pos += Vec3::splat(50.0);
        let (trees, round) = m.advance(master);
        assert!(round.full_rebuild);
        assert_eq!(m.totals().full_rebuilds, 1);
        assert_eq!(trees.iter().map(|t| t.particles.len()).sum::<usize>(), 400);
        for t in &trees {
            t.validate(cfg.bucket_size).unwrap();
        }
    }

    #[test]
    fn kd_corner_collapse_triggers_balance_rebuilds() {
        let mut cfg = config();
        cfg.tree_type = TreeType::KdTree;
        let ps = gen::uniform_cube(2000, 13, 1.0, 1.0);
        let (mut m, seeded) = TreeMaintainer::<CountData>::seed(&cfg, ps, false);
        let mut master = masters(&seeded);
        for _ in 0..3 {
            // Contract hard toward the box centre: median planes frozen
            // at build time drift badly out of balance.
            let c = m.universe().center();
            for p in master.iter_mut() {
                let r = p.pos - c;
                p.pos = c + r * 0.55;
            }
            let (trees, _round) = m.advance(master);
            master = masters(&trees);
        }
        assert!(
            m.totals().subtree_rebuilds > 0 || m.totals().full_rebuilds > 0,
            "median-split drift must trip the weight-balance policy: {:?}",
            m.totals()
        );
    }

    #[test]
    fn octree_churn_never_structurally_rebuilds() {
        // Octree structure is position-determined, so no amount of
        // in-universe churn should trigger a structural rebuild — this
        // is exactly what eliminates the old escape-fraction cascades
        // on the disk distribution.
        let cfg = config();
        let ps = gen::uniform_cube(1500, 13, 1.0, 1.0);
        let (mut m, seeded) = TreeMaintainer::<CountData>::seed(&cfg, ps, false);
        let mut master = masters(&seeded);
        for step in 0..4 {
            let c = m.universe().center();
            let uni = m.universe();
            for (i, p) in master.iter_mut().enumerate() {
                let r = p.pos - c;
                let s = if (i + step) % 2 == 0 { 0.93 } else { 1.05 };
                p.pos = c + r * s;
                p.pos.x = p.pos.x.clamp(uni.lo.x, uni.hi.x);
                p.pos.y = p.pos.y.clamp(uni.lo.y, uni.hi.y);
                p.pos.z = p.pos.z.clamp(uni.lo.z, uni.hi.z);
            }
            let (trees, round) = m.advance(master);
            assert!(!round.full_rebuild, "in-universe churn must not full-rebuild");
            master = masters(&trees);
        }
        assert_eq!(
            m.totals().subtree_rebuilds,
            0,
            "position-determined octree must never rebuild for balance: {:?}",
            m.totals()
        );
        assert!(m.totals().escaped > 0, "churn should evict particles");
        assert!(m.totals().batches > 0, "evictions should form batches");
    }

    #[test]
    fn absorbed_batch_does_not_trigger_spurious_rebuild_next_round() {
        // Regression: the old drift counters kept a stale as-built
        // depth after a large absorbed insert batch, firing the skew
        // trigger on the *next* (motionless) round. Balance criteria
        // are now recomputed from the current tree each round.
        let cfg = config();
        let ps = gen::uniform_cube(1200, 17, 1.0, 1.0);
        let (mut m, seeded) = TreeMaintainer::<CountData>::seed(&cfg, ps, false);
        let mut master = masters(&seeded);
        // Cram a third of the particles into one small off-centre blob:
        // one Subtree absorbs a large batch and deepens locally.
        let uni = m.universe();
        let blob = uni.lo + (uni.hi - uni.lo) * 0.25;
        for (i, p) in master.iter_mut().enumerate() {
            if i % 3 == 0 {
                let j = (i / 3) as f64;
                p.pos = blob
                    + Vec3::new(
                        (j * 0.37).fract() * 1e-3,
                        (j * 0.59).fract() * 1e-3,
                        (j * 0.73).fract() * 1e-3,
                    );
            }
        }
        let (trees, first) = m.advance(master);
        assert!(first.stats.n_inserted > 0, "blob must produce inserts");
        if first.full_rebuild {
            return; // imbalance fallback is legitimate for this blob
        }
        // Second, motionless advance: nothing may rebuild.
        let master = masters(&trees);
        let (_trees, second) = m.advance(master);
        assert!(!second.full_rebuild, "zero motion must not full-rebuild");
        assert!(
            second.rebuilt_subtrees.is_empty(),
            "zero motion after an absorbed batch must not rebuild: {:?}",
            second.rebuilt_subtrees
        );
        assert_eq!(second.stats.n_moved, 0);
    }

    #[test]
    fn partition_imbalance_handles_degenerate_loads() {
        // Regression: an empty load vector (a rank owning zero
        // Subtrees after a shrinking-population fallback) panicked on
        // `max().unwrap()`.
        assert_eq!(partition_imbalance(&[]), 1.0);
        assert_eq!(partition_imbalance(&[0, 0, 0]), 1.0);
        assert_eq!(partition_imbalance(&[4, 4, 4, 4]), 1.0);
        assert_eq!(partition_imbalance(&[8, 0]), 2.0);
    }

    #[test]
    fn shrinking_population_falls_back_then_advances_cleanly() {
        let cfg = config();
        let ps = gen::uniform_cube(600, 23, 1.0, 1.0);
        let (mut m, seeded) = TreeMaintainer::<CountData>::seed(&cfg, ps, false);
        let mut master = masters(&seeded);
        // Population shrinks (collisional merger): full fallback.
        master.truncate(500);
        let (trees, round) = m.advance(master);
        assert!(round.full_rebuild);
        assert_eq!(trees.iter().map(|t| t.particles.len()).sum::<usize>(), 500);
        // The next zero-motion advance over the re-decomposed forest
        // must succeed and report perfect balance handling.
        let master = masters(&trees);
        let (_trees, round) = m.advance(master);
        assert!(!round.full_rebuild);
        assert!(round.imbalance >= 1.0);
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let drift = |master: &mut Vec<Particle>, uni: BoundingBox| {
            let c = uni.center();
            for (i, p) in master.iter_mut().enumerate() {
                let r = p.pos - c;
                let s = if i % 2 == 0 { 0.95 } else { 1.03 };
                p.pos = c + r * s;
                p.pos.x = p.pos.x.clamp(uni.lo.x, uni.hi.x);
                p.pos.y = p.pos.y.clamp(uni.lo.y, uni.hi.y);
                p.pos.z = p.pos.z.clamp(uni.lo.z, uni.hi.z);
            }
        };
        let run = |threads: usize| {
            let mut cfg = config();
            cfg.incremental.batch_threads = threads;
            let ps = gen::uniform_cube(1000, 29, 1.0, 1.0);
            let (mut m, seeded) = TreeMaintainer::<CountData>::seed(&cfg, ps, true);
            let mut master = masters(&seeded);
            let mut out = Vec::new();
            for _ in 0..3 {
                drift(&mut master, m.universe());
                let (trees, round) = m.advance(master);
                out.push((trees, round.n_batches, round.stats));
                master = masters(&out.last().unwrap().0);
            }
            out
        };
        let a = run(1);
        let b = run(2);
        let c = run(8);
        for (x, y) in a.iter().zip(&b).chain(a.iter().zip(&c)) {
            assert_eq!(x.1, y.1, "batch counts must match across thread counts");
            assert_eq!(x.2, y.2, "stats must match across thread counts");
            assert_eq!(x.0.len(), y.0.len());
            for (ta, tb) in x.0.iter().zip(&y.0) {
                assert_eq!(ta.particles, tb.particles);
                assert_eq!(ta.nodes.len(), tb.nodes.len());
                for (na, nb) in ta.nodes.iter().zip(&tb.nodes) {
                    assert_eq!(na.key, nb.key);
                    assert_eq!(na.shape, nb.shape);
                    assert_eq!(na.data, nb.data);
                }
            }
        }
    }
}
