//! Set-associative LRU cache arrays and the three-level hierarchy.

/// One set-associative cache array with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct SetAssoc {
    /// Log2 of the line size in bytes.
    line_bits: u32,
    /// Number of sets (power of two).
    n_sets: usize,
    /// Ways per set.
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags` (higher = more recent).
    stamps: Vec<u64>,
    clock: u64,
}

impl SetAssoc {
    /// A cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines (all powers of two).
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> SetAssoc {
        assert!(line_bytes.is_power_of_two());
        let n_sets = capacity_bytes / (ways * line_bytes);
        assert!(n_sets.is_power_of_two(), "sets must be a power of two");
        SetAssoc {
            line_bits: line_bytes.trailing_zeros(),
            n_sets,
            ways,
            tags: vec![u64::MAX; n_sets * ways],
            stamps: vec![0; n_sets * ways],
            clock: 0,
        }
    }

    /// Looks a line up by byte address; inserts on miss (LRU eviction).
    /// Returns `true` on hit.
    pub fn access_line(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_bits;
        let set = (line as usize) & (self.n_sets - 1);
        let tag = line;
        self.clock += 1;
        let base = set * self.ways;
        let mut victim = base;
        for i in base..base + self.ways {
            if self.tags[i] == tag {
                self.stamps[i] = self.clock;
                return true;
            }
            if self.stamps[i] < self.stamps[victim] {
                victim = i;
            }
        }
        self.tags[victim] = tag;
        self.stamps[victim] = self.clock;
        false
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_bits
    }
}

/// Hit/miss counters for one level, split by loads and stores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Load line-accesses reaching this level.
    pub load_accesses: u64,
    /// Load misses at this level.
    pub load_misses: u64,
    /// Store line-accesses reaching this level.
    pub store_accesses: u64,
    /// Store misses at this level.
    pub store_misses: u64,
}

impl LevelStats {
    /// Load miss rate (0..=1).
    pub fn load_miss_rate(&self) -> f64 {
        if self.load_accesses == 0 {
            0.0
        } else {
            self.load_misses as f64 / self.load_accesses as f64
        }
    }

    /// Store miss rate (0..=1).
    pub fn store_miss_rate(&self) -> f64 {
        if self.store_accesses == 0 {
            0.0
        } else {
            self.store_misses as f64 / self.store_accesses as f64
        }
    }

    /// Element-wise sum.
    pub fn merge(&mut self, o: &LevelStats) {
        self.load_accesses += o.load_accesses;
        self.load_misses += o.load_misses;
        self.store_accesses += o.store_accesses;
        self.store_misses += o.store_misses;
    }
}

/// Hierarchy geometry and timing. Defaults mirror a Stampede2 SKX node
/// (Table II's platform).
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// L1D capacity per CPU in bytes.
    pub l1_bytes: usize,
    /// L1D associativity.
    pub l1_ways: usize,
    /// L2 capacity per CPU in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Shared L3 capacity in bytes.
    pub l3_bytes: usize,
    /// L3 associativity.
    pub l3_ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Cycles for an L1 hit.
    pub l1_cycles: f64,
    /// Cycles for an L2 hit.
    pub l2_cycles: f64,
    /// Cycles for an L3 hit.
    pub l3_cycles: f64,
    /// Cycles for a memory access.
    pub mem_cycles: f64,
    /// Core clock in GHz (converts cycles to seconds).
    pub clock_ghz: f64,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l2_bytes: 1024 * 1024,
            l2_ways: 16,
            l3_bytes: 33 * 1024 * 1024 / 32 * 32, // keep power-of-two sets below
            l3_ways: 11,
            line_bytes: 64,
            l1_cycles: 4.0,
            l2_cycles: 14.0,
            l3_cycles: 50.0,
            mem_cycles: 200.0,
            clock_ghz: 2.1,
        }
    }
}

/// Private L1D/L2 per CPU, shared L3, with per-CPU cycle accounting.
pub struct CacheHierarchy {
    l1: Vec<SetAssoc>,
    l2: Vec<SetAssoc>,
    l3: SetAssoc,
    /// Per-CPU per-level stats, indexed `[cpu]`.
    pub l1_stats: Vec<LevelStats>,
    /// L2 stats per CPU.
    pub l2_stats: Vec<LevelStats>,
    /// Shared L3 stats.
    pub l3_stats: LevelStats,
    /// Data cycles accumulated per CPU.
    pub cycles: Vec<f64>,
    cfg: HierarchyConfig,
}

impl CacheHierarchy {
    /// A hierarchy for `cpus` cores.
    pub fn new(cpus: usize, cfg: HierarchyConfig) -> CacheHierarchy {
        // Round the L3 to a power-of-two set count by trimming capacity.
        let l3_sets = (cfg.l3_bytes / (cfg.l3_ways * cfg.line_bytes)).next_power_of_two() / 2;
        let l3_capacity = l3_sets.max(1) * cfg.l3_ways * cfg.line_bytes;
        CacheHierarchy {
            l1: (0..cpus)
                .map(|_| SetAssoc::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes))
                .collect(),
            l2: (0..cpus)
                .map(|_| SetAssoc::new(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes))
                .collect(),
            l3: SetAssoc::new(l3_capacity, cfg.l3_ways, cfg.line_bytes),
            l1_stats: vec![LevelStats::default(); cpus],
            l2_stats: vec![LevelStats::default(); cpus],
            l3_stats: LevelStats::default(),
            cycles: vec![0.0; cpus],
            cfg,
        }
    }

    /// Performs one access of `bytes` bytes at `addr` from `cpu`,
    /// touching every overlapped line.
    pub fn access(&mut self, cpu: usize, addr: u64, bytes: u64, write: bool) {
        let line = self.cfg.line_bytes as u64;
        let first = addr / line;
        let last = (addr + bytes.max(1) - 1) / line;
        for l in first..=last {
            self.access_one(cpu, l * line, write);
        }
    }

    fn access_one(&mut self, cpu: usize, line_addr: u64, write: bool) {
        let (acc, miss) = if write { (2, 2) } else { (0, 0) };
        let _ = (acc, miss);
        let bump = |s: &mut LevelStats, write: bool, miss: bool| {
            if write {
                s.store_accesses += 1;
                if miss {
                    s.store_misses += 1;
                }
            } else {
                s.load_accesses += 1;
                if miss {
                    s.load_misses += 1;
                }
            }
        };
        let l1_hit = self.l1[cpu].access_line(line_addr);
        bump(&mut self.l1_stats[cpu], write, !l1_hit);
        if l1_hit {
            self.cycles[cpu] += self.cfg.l1_cycles;
            return;
        }
        let l2_hit = self.l2[cpu].access_line(line_addr);
        bump(&mut self.l2_stats[cpu], write, !l2_hit);
        if l2_hit {
            self.cycles[cpu] += self.cfg.l2_cycles;
            return;
        }
        let l3_hit = self.l3.access_line(line_addr);
        bump(&mut self.l3_stats, write, !l3_hit);
        self.cycles[cpu] += if l3_hit { self.cfg.l3_cycles } else { self.cfg.mem_cycles };
    }

    /// Estimated data-access runtime: the busiest CPU's cycles over the
    /// clock (CPUs run concurrently).
    pub fn runtime_seconds(&self) -> f64 {
        let max = self.cycles.iter().copied().fold(0.0, f64::max);
        max / (self.cfg.clock_ghz * 1e9)
    }

    /// Aggregated L1 stats over all CPUs.
    pub fn l1_total(&self) -> LevelStats {
        let mut t = LevelStats::default();
        for s in &self.l1_stats {
            t.merge(s);
        }
        t
    }

    /// Aggregated L2 stats over all CPUs.
    pub fn l2_total(&self) -> LevelStats {
        let mut t = LevelStats::default();
        for s in &self.l2_stats {
            t.merge(s);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = SetAssoc::new(1024, 2, 64);
        assert!(!c.access_line(0)); // cold miss
        assert!(c.access_line(0));
        assert!(c.access_line(63)); // same line
        assert!(!c.access_line(64)); // next line
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way, 64B lines, 8 sets → addresses 0, 512, 1024 map to set 0.
        let mut c = SetAssoc::new(1024, 2, 64);
        assert!(!c.access_line(0));
        assert!(!c.access_line(512));
        assert!(!c.access_line(1024)); // evicts line 0
        assert!(!c.access_line(0)); // 0 is gone
        assert!(c.access_line(1024)); // still resident
    }

    #[test]
    fn hierarchy_miss_flows_down() {
        let mut h = CacheHierarchy::new(1, HierarchyConfig::default());
        h.access(0, 0, 8, false);
        assert_eq!(h.l1_stats[0].load_misses, 1);
        assert_eq!(h.l2_stats[0].load_misses, 1);
        assert_eq!(h.l3_stats.load_misses, 1);
        h.access(0, 0, 8, false);
        assert_eq!(h.l1_stats[0].load_accesses, 2);
        assert_eq!(h.l1_stats[0].load_misses, 1); // second is an L1 hit
        assert_eq!(h.l2_stats[0].load_accesses, 1); // never reached again
    }

    #[test]
    fn wide_access_touches_multiple_lines() {
        let mut h = CacheHierarchy::new(1, HierarchyConfig::default());
        h.access(0, 60, 8, true); // straddles two lines
        assert_eq!(h.l1_stats[0].store_accesses, 2);
    }

    #[test]
    fn private_l1_shared_l3() {
        let mut h = CacheHierarchy::new(2, HierarchyConfig::default());
        h.access(0, 0, 8, false); // cpu0 warms L3
        h.access(1, 0, 8, false); // cpu1 misses L1/L2 but hits L3
        assert_eq!(h.l1_stats[1].load_misses, 1);
        assert_eq!(h.l3_stats.load_accesses, 2);
        assert_eq!(h.l3_stats.load_misses, 1);
    }

    #[test]
    fn runtime_tracks_busiest_cpu() {
        let mut h = CacheHierarchy::new(2, HierarchyConfig::default());
        for i in 0..100 {
            h.access(0, i * 64, 8, false);
        }
        let r1 = h.runtime_seconds();
        h.access(1, 0, 8, false);
        assert_eq!(h.runtime_seconds(), r1, "idle CPU does not extend runtime");
        assert!(r1 > 0.0);
    }

    #[test]
    fn miss_rates_compute() {
        let s =
            LevelStats { load_accesses: 10, load_misses: 3, store_accesses: 4, store_misses: 1 };
        assert!((s.load_miss_rate() - 0.3).abs() < 1e-12);
        assert!((s.store_miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(LevelStats::default().load_miss_rate(), 0.0);
    }
}
