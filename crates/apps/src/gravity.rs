//! Barnes-Hut gravity — the paper's flagship application (Figs. 6–8).
//!
//! `CentroidData` accumulates mass moments from the leaves to the root
//! (the paper's Fig. 6, extended with the quadrupole term its "more
//! sophisticated gravity solver" tracks); `GravityVisitor` opens nodes by
//! sphere–box intersection against the node's opening radius and applies
//! `gravApprox`/`gravExact` kernels (Fig. 7). A complete N-body step is
//! ~100 lines of user code — that is the productivity claim of Table III.

use paratreet_core::{SpatialNodeView, TargetBucket, Visitor};
use paratreet_geometry::{BoundingBox, Sphere, Vec3};
use paratreet_particles::Particle;
use paratreet_tree::data::wire;
use paratreet_tree::Data;

/// Mass moments of a subtree: monopole (centroid) plus raw quadrupole,
/// and the tight box of the subtree's particles.
///
/// Second moments are accumulated about the coordinate origin
/// (`quad[ij] = Σ m xᵢ xⱼ`) so that child states merge by plain
/// addition; the traversal shifts them to the centroid on use.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CentroidData {
    /// Σ m·x — first mass moment.
    pub moment: Vec3,
    /// Σ m.
    pub sum_mass: f64,
    /// Raw second moments about the origin, packed
    /// `[xx, xy, xz, yy, yz, zz]`.
    pub quad: [f64; 6],
    /// Tight bounding box of the subtree's particles.
    pub tight_box: BoundingBox,
}

impl CentroidData {
    /// Mass-weighted centroid (origin for an empty subtree).
    pub fn centroid(&self) -> Vec3 {
        if self.sum_mass == 0.0 {
            Vec3::ZERO
        } else {
            self.moment / self.sum_mass
        }
    }

    /// Quadrupole tensor about the centroid, packed like `quad`.
    pub fn quad_about_centroid(&self) -> [f64; 6] {
        let c = self.centroid();
        let m = self.sum_mass;
        [
            self.quad[0] - m * c.x * c.x,
            self.quad[1] - m * c.x * c.y,
            self.quad[2] - m * c.x * c.z,
            self.quad[3] - m * c.y * c.y,
            self.quad[4] - m * c.y * c.z,
            self.quad[5] - m * c.z * c.z,
        ]
    }

    /// The opening radius: the farthest distance from the centroid to a
    /// corner of the subtree's tight box, divided by θ. A target bucket
    /// inside this sphere must open the node (ChaNGa's criterion).
    pub fn opening_radius(&self, theta: f64) -> f64 {
        if self.tight_box.is_empty() {
            return 0.0;
        }
        let rmax = self.tight_box.max_dist_sq_to(self.centroid()).sqrt();
        rmax / theta
    }
}

impl Data for CentroidData {
    fn from_leaf(particles: &[Particle], _bbox: &BoundingBox) -> Self {
        let mut d = CentroidData::default();
        for p in particles {
            d.moment += p.pos * p.mass;
            d.sum_mass += p.mass;
            d.quad[0] += p.mass * p.pos.x * p.pos.x;
            d.quad[1] += p.mass * p.pos.x * p.pos.y;
            d.quad[2] += p.mass * p.pos.x * p.pos.z;
            d.quad[3] += p.mass * p.pos.y * p.pos.y;
            d.quad[4] += p.mass * p.pos.y * p.pos.z;
            d.quad[5] += p.mass * p.pos.z * p.pos.z;
            d.tight_box.grow(p.pos);
        }
        d
    }

    fn merge(&mut self, child: &Self) {
        self.moment += child.moment;
        self.sum_mass += child.sum_mass;
        for i in 0..6 {
            self.quad[i] += child.quad[i];
        }
        self.tight_box.merge(&child.tight_box);
    }

    fn encode(&self, out: &mut Vec<u8>) {
        wire::put_vec3(out, self.moment);
        wire::put_f64(out, self.sum_mass);
        for q in self.quad {
            wire::put_f64(out, q);
        }
        wire::put_vec3(out, self.tight_box.lo);
        wire::put_vec3(out, self.tight_box.hi);
    }

    fn decode(input: &[u8]) -> Option<(Self, usize)> {
        let mut off = 0;
        let moment = wire::get_vec3(input, &mut off)?;
        let sum_mass = wire::get_f64(input, &mut off)?;
        let mut quad = [0.0; 6];
        for q in &mut quad {
            *q = wire::get_f64(input, &mut off)?;
        }
        let lo = wire::get_vec3(input, &mut off)?;
        let hi = wire::get_vec3(input, &mut off)?;
        Some((CentroidData { moment, sum_mass, quad, tight_box: BoundingBox { lo, hi } }, off))
    }
}

/// Exact Newtonian attraction of a source point on a target position,
/// Plummer-softened: returns (acceleration, potential) per unit G.
#[inline]
pub fn grav_exact(target: Vec3, src_pos: Vec3, src_mass: f64, softening: f64) -> (Vec3, f64) {
    let dr = src_pos - target;
    let r2 = dr.norm_sq() + softening * softening;
    if r2 == 0.0 {
        return (Vec3::ZERO, 0.0);
    }
    let r = r2.sqrt();
    let inv_r3 = 1.0 / (r2 * r);
    (dr * (src_mass * inv_r3), -src_mass / r)
}

/// Monopole + quadrupole approximation of a node's attraction on a
/// target position: returns (acceleration, potential) per unit G.
/// `quad` is the tensor about `centroid`, packed `[xx,xy,xz,yy,yz,zz]`.
#[inline]
pub fn grav_approx(target: Vec3, centroid: Vec3, mass: f64, quad: &[f64; 6]) -> (Vec3, f64) {
    let dr = target - centroid;
    let r2 = dr.norm_sq();
    if r2 == 0.0 {
        return (Vec3::ZERO, 0.0);
    }
    let r = r2.sqrt();
    let inv_r = 1.0 / r;
    let inv_r2 = inv_r * inv_r;
    let inv_r3 = inv_r2 * inv_r;
    let inv_r5 = inv_r3 * inv_r2;
    let inv_r7 = inv_r5 * inv_r2;

    // Monopole.
    let mut acc = -dr * (mass * inv_r3);
    let mut pot = -mass * inv_r;

    // Quadrupole (Hernquist 1987 form with the raw second-moment tensor
    // Q about the centroid): φ₂ = −[3 rᵀQr − r² trQ] / (2 r⁵).
    let tr = quad[0] + quad[3] + quad[5];
    let qr = Vec3::new(
        quad[0] * dr.x + quad[1] * dr.y + quad[2] * dr.z,
        quad[1] * dr.x + quad[3] * dr.y + quad[4] * dr.z,
        quad[2] * dr.x + quad[4] * dr.y + quad[5] * dr.z,
    );
    let rqr = dr.dot(qr);
    pot -= (3.0 * rqr - r2 * tr) * 0.5 * inv_r5;
    // a = −∇φ₂ = 3Qr/r⁵ − 7.5 (rᵀQr) r/r⁷ + 1.5 trQ r/r⁵.
    acc += qr * (3.0 * inv_r5);
    acc -= dr * (7.5 * rqr * inv_r7);
    acc += dr * (1.5 * tr * inv_r5);

    (acc, pot)
}

/// The Barnes-Hut visitor (paper Fig. 7): sphere–box opening criterion,
/// `grav_approx` on pruned nodes, `grav_exact` on leaves.
pub struct GravityVisitor {
    /// Barnes-Hut opening angle θ (smaller = more accurate, more work).
    pub theta: f64,
    /// Gravitational constant.
    pub g: f64,
}

impl Default for GravityVisitor {
    fn default() -> Self {
        GravityVisitor { theta: 0.7, g: 1.0 }
    }
}

impl Visitor for GravityVisitor {
    type Data = CentroidData;
    type State = ();

    fn open(&self, source: &SpatialNodeView<'_, CentroidData>, target: &TargetBucket<()>) -> bool {
        if source.data.sum_mass == 0.0 {
            return false;
        }
        let sphere = Sphere::new(source.data.centroid(), source.data.opening_radius(self.theta));
        target.bbox.intersects_sphere(&sphere)
    }

    fn node(&self, source: &SpatialNodeView<'_, CentroidData>, target: &mut TargetBucket<()>) {
        let centroid = source.data.centroid();
        let mass = source.data.sum_mass;
        let quad = source.data.quad_about_centroid();
        for p in &mut target.particles {
            let (acc, pot) = grav_approx(p.pos, centroid, mass, &quad);
            p.acc += acc * self.g;
            p.potential += pot * self.g * p.mass;
        }
    }

    fn leaf(&self, source: &SpatialNodeView<'_, CentroidData>, target: &mut TargetBucket<()>) {
        for p in &mut target.particles {
            for s in source.particles {
                if s.id == p.id {
                    continue; // no self-interaction
                }
                let (acc, pot) = grav_exact(p.pos, s.pos, s.mass, p.softening.max(s.softening));
                p.acc += acc * self.g;
                p.potential += pot * self.g * p.mass;
            }
        }
    }

    fn cell(
        &self,
        source: &SpatialNodeView<'_, CentroidData>,
        target: &SpatialNodeView<'_, CentroidData>,
    ) -> bool {
        // Dual-tree refinement rule: split both sides only while the
        // target cell is at least as extended as the source; once the
        // target is the smaller cell, keep it whole and refine only the
        // source (B instead of B² child interactions).
        target.data.tight_box.radius_sq() >= source.data.tight_box.radius_sq()
    }
}

/// Kick-drift-kick leapfrog integration of accelerations computed by a
/// gravity traversal. `accs_fresh` must hold the accelerations at the
/// *current* positions.
pub fn leapfrog_kick_drift(particles: &mut [Particle], dt: f64) {
    for p in particles.iter_mut() {
        p.vel += p.acc * (0.5 * dt);
        p.pos += p.vel * dt;
    }
}

/// The closing half-kick once new accelerations are known.
pub fn leapfrog_kick(particles: &mut [Particle], dt: f64) {
    for p in particles.iter_mut() {
        p.vel += p.acc * (0.5 * dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paratreet_geometry::ROOT_KEY;

    fn particle(id: u64, mass: f64, pos: Vec3) -> Particle {
        Particle::point_mass(id, mass, pos)
    }

    #[test]
    fn centroid_accumulates_correctly() {
        let b = BoundingBox::new(Vec3::ZERO, Vec3::splat(4.0));
        let ps = vec![particle(0, 1.0, Vec3::ZERO), particle(1, 3.0, Vec3::new(4.0, 0.0, 0.0))];
        let d = CentroidData::from_leaf(&ps, &b);
        assert_eq!(d.sum_mass, 4.0);
        assert_eq!(d.centroid(), Vec3::new(3.0, 0.0, 0.0));
        // Merge matches from_leaf over the concatenation.
        let d1 = CentroidData::from_leaf(&ps[..1], &b);
        let d2 = CentroidData::from_leaf(&ps[1..], &b);
        let mut m = CentroidData::default();
        m.merge(&d1);
        m.merge(&d2);
        assert!((m.centroid() - d.centroid()).norm() < 1e-12);
        assert!((m.sum_mass - d.sum_mass).abs() < 1e-12);
        for i in 0..6 {
            assert!((m.quad[i] - d.quad[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn quad_about_centroid_is_translation_invariant() {
        let b = BoundingBox::empty();
        let shift = Vec3::new(100.0, -50.0, 25.0);
        let ps: Vec<Particle> = (0..5)
            .map(|i| {
                particle(i, 1.0 + i as f64, Vec3::new(i as f64, (i * i) as f64 * 0.1, -(i as f64)))
            })
            .collect();
        let shifted: Vec<Particle> =
            ps.iter().map(|p| particle(p.id, p.mass, p.pos + shift)).collect();
        let q1 = CentroidData::from_leaf(&ps, &b).quad_about_centroid();
        let q2 = CentroidData::from_leaf(&shifted, &b).quad_about_centroid();
        for i in 0..6 {
            assert!((q1[i] - q2[i]).abs() < 1e-6, "component {i}: {} vs {}", q1[i], q2[i]);
        }
    }

    #[test]
    fn wire_roundtrip() {
        let b = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let ps = vec![particle(0, 2.0, Vec3::splat(0.3)), particle(1, 1.0, Vec3::splat(0.9))];
        let d = CentroidData::from_leaf(&ps, &b);
        let mut buf = Vec::new();
        d.encode(&mut buf);
        let (back, used) = CentroidData::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, d);
        assert!(CentroidData::decode(&buf[..10]).is_none());
    }

    #[test]
    fn exact_kernel_matches_newton() {
        // Unit masses 2 apart: |a| = 1/4 toward the source.
        let (acc, pot) = grav_exact(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 1.0, 0.0);
        assert!((acc.x - 0.25).abs() < 1e-15);
        assert_eq!(acc.y, 0.0);
        assert!((pot + 0.5).abs() < 1e-15);
        // Softening bounds the force at zero separation.
        let (acc, _) = grav_exact(Vec3::ZERO, Vec3::ZERO, 1.0, 0.1);
        assert_eq!(acc, Vec3::ZERO);
        let (acc, _) = grav_exact(Vec3::ZERO, Vec3::new(1e-8, 0.0, 0.0), 1.0, 0.1);
        assert!(acc.norm() < 1e-4 / (0.1f64).powi(2));
    }

    #[test]
    fn quadrupole_improves_on_monopole() {
        // A dumbbell source seen from afar: quadrupole must reduce the
        // error relative to the exact pairwise force.
        let b = BoundingBox::empty();
        let srcs = vec![
            particle(0, 1.0, Vec3::new(0.0, 1.0, 0.0)),
            particle(1, 1.0, Vec3::new(0.0, -1.0, 0.0)),
        ];
        let d = CentroidData::from_leaf(&srcs, &b);
        let target = Vec3::new(6.0, 2.0, 1.0);
        let exact: Vec3 = srcs
            .iter()
            .map(|s| grav_exact(target, s.pos, s.mass, 0.0).0)
            .fold(Vec3::ZERO, |a, v| a + v);
        let mono = grav_approx(target, d.centroid(), d.sum_mass, &[0.0; 6]).0;
        let quad = grav_approx(target, d.centroid(), d.sum_mass, &d.quad_about_centroid()).0;
        let err_mono = (mono - exact).norm() / exact.norm();
        let err_quad = (quad - exact).norm() / exact.norm();
        assert!(err_quad < err_mono / 3.0, "mono {err_mono}, quad {err_quad}");
    }

    #[test]
    fn visitor_opens_near_nodes_and_prunes_far_ones() {
        let b = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let srcs = vec![particle(0, 1.0, Vec3::splat(0.25)), particle(1, 1.0, Vec3::splat(0.75))];
        let data = CentroidData::from_leaf(&srcs, &b);
        let view = SpatialNodeView {
            key: ROOT_KEY,
            bbox: &b,
            n_particles: 2,
            data: &data,
            particles: &srcs,
        };
        let v = GravityVisitor { theta: 0.5, g: 1.0 };
        let near = TargetBucket {
            leaf_key: ROOT_KEY,
            particles: vec![particle(2, 1.0, Vec3::splat(0.9))],
            bbox: BoundingBox::cube(Vec3::splat(0.9), 0.05),
            state: (),
        };
        let far = TargetBucket {
            leaf_key: ROOT_KEY,
            particles: vec![particle(3, 1.0, Vec3::splat(50.0))],
            bbox: BoundingBox::cube(Vec3::splat(50.0), 0.05),
            state: (),
        };
        assert!(v.open(&view, &near));
        assert!(!v.open(&view, &far));
    }

    #[test]
    fn leaf_skips_self_interaction() {
        let b = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let p = particle(7, 1.0, Vec3::splat(0.5));
        let data = CentroidData::from_leaf(std::slice::from_ref(&p), &b);
        let view = SpatialNodeView {
            key: ROOT_KEY,
            bbox: &b,
            n_particles: 1,
            data: &data,
            particles: std::slice::from_ref(&p),
        };
        let v = GravityVisitor::default();
        let mut bucket = TargetBucket {
            leaf_key: ROOT_KEY,
            particles: vec![p],
            bbox: BoundingBox::cube(Vec3::splat(0.5), 0.01),
            state: (),
        };
        v.leaf(&view, &mut bucket);
        assert_eq!(bucket.particles[0].acc, Vec3::ZERO);
    }

    #[test]
    fn leapfrog_moves_particles() {
        let mut ps = vec![particle(0, 1.0, Vec3::ZERO)];
        ps[0].acc = Vec3::new(1.0, 0.0, 0.0);
        leapfrog_kick_drift(&mut ps, 1.0);
        assert_eq!(ps[0].vel, Vec3::new(0.5, 0.0, 0.0));
        assert_eq!(ps[0].pos, Vec3::new(0.5, 0.0, 0.0));
        leapfrog_kick(&mut ps, 1.0);
        assert_eq!(ps[0].vel, Vec3::new(1.0, 0.0, 0.0));
    }
}
