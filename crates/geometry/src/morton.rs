//! Morton (Z-order) space-filling-curve keys.
//!
//! SFC decomposition maps every particle to a point on a one-dimensional
//! number line and slices that line into partitions uniform in particle
//! count (Warren & Salmon 1993, ref. 6 in the paper). We use the Morton
//! curve: each coordinate is quantised to [`MORTON_BITS_PER_DIM`] bits and
//! the bits of x, y, z are interleaved into a single 63-bit key.
//!
//! The same bit layout doubles as the octree digit sequence: the top three
//! bits of a key name the root octant the particle falls in, the next
//! three its sub-octant, and so on. This is the "mapping function from
//! particle key to octree node key" the paper mentions, and it is what
//! lets SFC decomposition pair naturally with octrees.

/// Bits of resolution per dimension (3 × 21 = 63 bits total).
pub const MORTON_BITS_PER_DIM: u32 = 21;

/// A 63-bit Morton key. The value `u64::MAX` is never produced and is free
/// for use as a sentinel by callers.
pub type MortonKey = u64;

use crate::{BoundingBox, Vec3};

/// Spreads the low 21 bits of `v` so that consecutive input bits land
/// three positions apart (bit i of the input moves to bit 3i).
#[inline]
pub fn spread_bits(v: u64) -> u64 {
    // Standard magic-number bit spreading for 21-bit inputs.
    let mut x = v & 0x1f_ffff; // 21 bits
    x = (x | x << 32) & 0x1f00000000ffff;
    x = (x | x << 16) & 0x1f0000ff0000ff;
    x = (x | x << 8) & 0x100f00f00f00f00f;
    x = (x | x << 4) & 0x10c30c30c30c30c3;
    x = (x | x << 2) & 0x1249249249249249;
    x
}

/// Inverse of [`spread_bits`]: collects every third bit back together.
#[inline]
pub fn compact_bits(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | x >> 2) & 0x10c30c30c30c30c3;
    x = (x | x >> 4) & 0x100f00f00f00f00f;
    x = (x | x >> 8) & 0x1f0000ff0000ff;
    x = (x | x >> 16) & 0x1f00000000ffff;
    x = (x | x >> 32) & 0x1f_ffff;
    x
}

/// Interleaves three 21-bit integer coordinates into a Morton key.
/// Bit layout matches [`BoundingBox::octant`]: x occupies the highest bit
/// of every 3-bit digit, then y, then z.
#[inline]
pub fn interleave(ix: u64, iy: u64, iz: u64) -> MortonKey {
    (spread_bits(ix) << 2) | (spread_bits(iy) << 1) | spread_bits(iz)
}

/// Splits a Morton key back into its three integer coordinates.
#[inline]
pub fn deinterleave(key: MortonKey) -> (u64, u64, u64) {
    (compact_bits(key >> 2), compact_bits(key >> 1), compact_bits(key))
}

/// Quantises one coordinate of `p` into a 21-bit cell index within `[lo, hi)`.
#[inline]
fn quantize(v: f64, lo: f64, hi: f64) -> u64 {
    let cells = (1u64 << MORTON_BITS_PER_DIM) as f64;
    let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
    // Clamp so points exactly on the upper boundary stay in the last cell.
    ((t * cells) as u64).min((1 << MORTON_BITS_PER_DIM) - 1)
}

/// The Morton key of position `p` within `universe`. Points outside the
/// box are clamped to its surface cells.
#[inline]
pub fn morton_key(p: Vec3, universe: &BoundingBox) -> MortonKey {
    let ix = quantize(p.x, universe.lo.x, universe.hi.x);
    let iy = quantize(p.y, universe.lo.y, universe.hi.y);
    let iz = quantize(p.z, universe.lo.z, universe.hi.z);
    interleave(ix, iy, iz)
}

/// The octree child digit (0..8) of a Morton key at `level` (level 0 is
/// the root split). Returns the 3-bit group counting from the top.
#[inline]
pub fn octree_digit(key: MortonKey, level: u32) -> usize {
    debug_assert!(level < MORTON_BITS_PER_DIM);
    ((key >> (3 * (MORTON_BITS_PER_DIM - 1 - level))) & 0b111) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_compact_roundtrip() {
        for v in [0u64, 1, 2, 0x15555, 0x1f_ffff, 123_456] {
            assert_eq!(compact_bits(spread_bits(v)), v);
        }
    }

    #[test]
    fn interleave_roundtrip() {
        let (x, y, z) = (123u64, 45_678, 1_999_999);
        assert_eq!(deinterleave(interleave(x, y, z)), (x, y, z));
    }

    #[test]
    fn interleave_bit_layout_matches_octants() {
        // x-high alone should set bit 2 of the top digit.
        let max = (1u64 << MORTON_BITS_PER_DIM) - 1;
        let key = interleave(max, 0, 0);
        assert_eq!(octree_digit(key, 0), 0b100);
        let key = interleave(0, max, 0);
        assert_eq!(octree_digit(key, 0), 0b010);
        let key = interleave(0, 0, max);
        assert_eq!(octree_digit(key, 0), 0b001);
    }

    #[test]
    fn keys_fit_in_63_bits() {
        let max = (1u64 << MORTON_BITS_PER_DIM) - 1;
        let key = interleave(max, max, max);
        assert!(key < 1u64 << 63);
        assert_eq!(key, (1u64 << 63) - 1);
    }

    #[test]
    fn morton_key_ordering_is_spatial() {
        let u = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        // All points in the low octant sort before all points in octant 7.
        let lo_octant = morton_key(Vec3::splat(0.25), &u);
        let hi_octant = morton_key(Vec3::splat(0.75), &u);
        assert!(lo_octant < hi_octant);
        assert_eq!(octree_digit(lo_octant, 0), 0);
        assert_eq!(octree_digit(hi_octant, 0), 7);
    }

    #[test]
    fn boundary_points_clamp() {
        let u = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let k = morton_key(Vec3::splat(1.0), &u);
        let (x, y, z) = deinterleave(k);
        let max = (1u64 << MORTON_BITS_PER_DIM) - 1;
        assert_eq!((x, y, z), (max, max, max));
        // Outside points clamp rather than wrap.
        let k2 = morton_key(Vec3::splat(5.0), &u);
        assert_eq!(k, k2);
    }

    #[test]
    fn degenerate_universe_yields_zero() {
        let u = BoundingBox::new(Vec3::splat(1.0), Vec3::splat(1.0));
        assert_eq!(morton_key(Vec3::splat(1.0), &u), 0);
    }

    #[test]
    fn octree_digit_walks_down_levels() {
        let u = BoundingBox::new(Vec3::ZERO, Vec3::splat(1.0));
        // Point in octant 7 of octant 0: first digit 0, second 7.
        let p = Vec3::splat(0.49);
        let k = morton_key(p, &u);
        assert_eq!(octree_digit(k, 0), 0);
        assert_eq!(octree_digit(k, 1), 7);
    }
}
