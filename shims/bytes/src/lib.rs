//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` is a cheaply-cloneable shared byte buffer with a consuming
//! read cursor (the `Buf` trait); `BytesMut` is an append-only builder
//! (the `BufMut` trait). Only little-endian accessors used by this
//! workspace are provided.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Read side: consuming little-endian accessors.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write side: appending little-endian accessors.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Shared immutable byte buffer with a read cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }

    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a view of `range` within the current window.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: data.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}
impl Eq for Bytes {}

/// Growable byte builder; `freeze` converts to `Bytes` without copying.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}
