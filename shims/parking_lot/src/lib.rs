//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Only the surface the workspace actually uses is provided: a `Mutex`
//! whose `lock` does not return a poison `Result` (poisoning is
//! swallowed, matching parking_lot's no-poison semantics) and whose
//! `try_lock` returns an `Option` guard.

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
