//! Offline stand-in for the `criterion` crate.
//!
//! Same bench-definition API (`criterion_group!`, `benchmark_group`,
//! `bench_with_input`, ...) but a deliberately tiny runner: each
//! benchmark runs a fixed handful of iterations and prints the mean
//! wall-clock time. No statistics, plots, or baselines — enough to keep
//! `cargo bench` and `cargo clippy --all-targets` working offline.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const WARMUP_ITERS: u32 = 1;
const TIMED_ITERS: u32 = 3;

/// Identifier for a bench within a group: `function_name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Throughput annotation (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher {
    label: String,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            black_box(f());
        }
        let mean = start.elapsed().as_secs_f64() / TIMED_ITERS as f64;
        println!("bench {:<48} {:>12.3} µs/iter", self.label, mean * 1e6);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { label: format!("{}/{}", self.name, id) };
        f(&mut b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { label: format!("{}/{}", self.name, id) };
        f(&mut b, input);
        self
    }

    pub fn finish(self) {}
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { label: id.to_string() };
        f(&mut b);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
