//! The Hilbert-curve decomposition must (a) change nothing about the
//! physics and (b) measurably reduce cross-rank traffic relative to
//! Morton slices — the reason production codes use Peano–Hilbert.

use paratreet_apps::gravity::{CentroidData, GravityVisitor};
use paratreet_baselines::direct::rms_acc_error;
use paratreet_core::{
    CacheModel, Configuration, DistributedEngine, Framework, SfcCurve, TraversalKind,
};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;

#[test]
fn hilbert_decomposition_preserves_forces() {
    let ps = gen::clustered(800, 3, 7, 1.0, 1.0);
    let run = |curve: SfcCurve| {
        let config = Configuration { sfc: curve, bucket_size: 8, ..Default::default() };
        let mut fw: Framework<CentroidData> = Framework::new(config, ps.clone());
        let visitor = GravityVisitor::default();
        fw.step(|s| {
            s.traverse(&visitor, TraversalKind::TopDown);
        });
        let mut out = fw.particles().to_vec();
        out.sort_by_key(|p| p.id);
        out
    };
    let morton = run(SfcCurve::Morton);
    let hilbert = run(SfcCurve::Hilbert);
    // Same octree, different bucket splitting at partition borders:
    // forces agree within Barnes-Hut noise (see the split-bucket test).
    let err = rms_acc_error(&hilbert, &morton);
    assert!(err < 2e-2, "curve choice changed forces beyond BH noise: {err}");
}

#[test]
fn hilbert_reduces_cross_rank_traffic() {
    let ps = gen::uniform_cube(20_000, 47, 1.0, 1.0);
    let visitor = GravityVisitor::default();
    let run = |curve: SfcCurve| {
        let config = Configuration { sfc: curve, bucket_size: 16, ..Default::default() };
        DistributedEngine::new(
            MachineSpec::test(13, 4), // prime rank count: slices misalign with octants
            config,
            CacheModel::WaitFree,
            TraversalKind::TopDown,
            &visitor,
        )
        .run_iteration(ps.clone())
    };
    let morton = run(SfcCurve::Morton);
    let hilbert = run(SfcCurve::Hilbert);
    assert!(
        hilbert.n_shared_buckets < morton.n_shared_buckets,
        "hilbert {} vs morton {} shared buckets",
        hilbert.n_shared_buckets,
        morton.n_shared_buckets
    );
    assert!(
        hilbert.cache.bytes_received <= morton.cache.bytes_received,
        "hilbert {} vs morton {} fill bytes",
        hilbert.cache.bytes_received,
        morton.cache.bytes_received
    );
    // And identical total physics.
    assert!(hilbert.counts.leaf_interactions + hilbert.counts.node_interactions > 0);
}

#[test]
fn hilbert_only_applies_to_sfc_decomposition() {
    // Oct decomposition derives splitters from Morton digits; requesting
    // Hilbert there must be a no-op, not a broken partitioner.
    use paratreet_core::{decompose, DecompType};
    let ps = gen::uniform_cube(2000, 3, 1.0, 1.0);
    let config = Configuration {
        decomp_type: DecompType::Oct,
        sfc: SfcCurve::Hilbert,
        n_partitions: 8,
        ..Default::default()
    };
    let d = decompose(ps, &config);
    // Every particle still lands in a valid partition.
    for s in &d.subtrees {
        for p in &s.particles {
            assert!((d.partitioner.assign(p) as usize) < d.n_partitions);
        }
    }
}
