//! Forest-of-trees decomposition with ghost-layer exchange.
//!
//! Everything else in this crate assumes *one* global box with one
//! decomposition inside it. This module generalizes the domain to a
//! **forest**: a set of boxes ([`DomainSpec`] — a single cube, a
//! periodic/tiled grid, or explicit irregular boxes), each hosting its
//! own [`Decomposition`] and tree set, stitched together by
//!
//! * **inter-box adjacency** ([`GhostRoute`]) — which box abuts which,
//!   including wrap-around routes through periodic seams,
//! * **2:1 seam balance** ([`enforce_seam_balance`]) — octree leaves on
//!   one side of a seam are refined until they are no more than twice
//!   the edge length of the leaves they touch on the other side, the
//!   classic forest-of-octrees smoothness constraint,
//! * **ghost-layer exchange** ([`exchange_ghosts`]) — boundary buckets
//!   within a ghost radius of a neighboring box are materialized as
//!   shifted particle copies, so multi-box workloads (the
//!   friends-of-friends finder, SPH at seams) see their full
//!   neighborhoods without global communication.
//!
//! In the shared-memory engines the exchange is a plain copy; the DES
//! path ([`des_ghost_exchange`]) prices the same zones through the
//! machine model — pack tasks on the source rank, NIC injection +
//! latency per zone, unpack tasks on the destination — so ghost traffic
//! lands on the virtual timeline and in `ghost.*` metrics like every
//! other phase.
//!
//! [`ForestMaintainer`] extends [`TreeMaintainer`] to the forest: each
//! box keeps its own maintainer, and a particle that escapes its box is
//! routed to the owning box so only the source and destination boxes
//! fall back to a rebuild — the other boxes keep their incremental
//! state (the box-scoped version of the single-box universe-escape
//! fallback).

use std::collections::BTreeSet;
use std::mem::size_of;

use paratreet_geometry::{BoundingBox, NodeKey, PeriodicBox, Vec3};
use paratreet_particles::Particle;
use paratreet_runtime::{CommStats, MachineSpec, Phase, Sim};
use paratreet_telemetry::{MetricSource, MetricsRegistry, Telemetry};
use paratreet_tree::node::NO_NODE;
use paratreet_tree::{BuildNode, BuiltTree, Data, NodeIdx, NodeShape, TreeBuilder, TreeType};

use crate::config::Configuration;
use crate::decomp::{decompose_within, universe_for, Decomposition, Partitioner};
use crate::maintain::{MaintainRound, TreeMaintainer, UpdateTotals};

// ---------------------------------------------------------------------
// Domain specification.
// ---------------------------------------------------------------------

/// How the simulation domain is carved into boxes.
#[derive(Clone, Debug, PartialEq)]
pub enum DomainSpec {
    /// The classic single global cube (derived from the particles, as
    /// [`universe_for`] does). One box, no seams, no ghosts.
    SingleCube,
    /// A regular grid of `dims[0] × dims[1] × dims[2]` cubical tiles of
    /// side `tile`, anchored at `origin`. With `periodic` the grid
    /// wraps: opposite outer faces are identified and ghost routes run
    /// through the seam.
    TiledGrid {
        /// Tiles per axis (each at least 1).
        dims: [usize; 3],
        /// Lower corner of tile `(0, 0, 0)`.
        origin: Vec3,
        /// Side length of one (cubical) tile.
        tile: f64,
        /// Identify opposite outer faces of the grid.
        periodic: bool,
    },
    /// Explicit, possibly irregular boxes (zoom-in regions, AMR-style
    /// patches). A particle belongs to the first box containing it, or
    /// the nearest box when none does. `period` optionally wraps the
    /// whole arrangement (`0.0` on an axis leaves it open).
    Explicit {
        /// The domain boxes, in ownership-priority order.
        boxes: Vec<BoundingBox>,
        /// Optional per-axis period of the arrangement.
        period: Option<Vec3>,
    },
}

impl DomainSpec {
    /// A tiled-grid spec with the conventional origin at zero.
    pub fn tiled(dims: [usize; 3], tile: f64, periodic: bool) -> DomainSpec {
        DomainSpec::TiledGrid { dims, origin: Vec3::ZERO, tile, periodic }
    }

    /// The periodic wrapping of this domain ([`PeriodicBox::OPEN`] when
    /// nothing wraps).
    pub fn period(&self) -> PeriodicBox {
        match self {
            DomainSpec::SingleCube => PeriodicBox::OPEN,
            DomainSpec::TiledGrid { dims, tile, periodic, .. } => {
                if *periodic {
                    PeriodicBox {
                        period: Vec3::new(
                            dims[0].max(1) as f64 * tile,
                            dims[1].max(1) as f64 * tile,
                            dims[2].max(1) as f64 * tile,
                        ),
                    }
                } else {
                    PeriodicBox::OPEN
                }
            }
            DomainSpec::Explicit { period, .. } => {
                period.map(|p| PeriodicBox { period: p }).unwrap_or(PeriodicBox::OPEN)
            }
        }
    }

    /// The domain boxes. `SingleCube` derives its one box from the
    /// particles exactly as the single-domain pipeline does, so a
    /// one-box forest decomposes identically to [`crate::decompose`].
    pub fn boxes(&self, particles: &[Particle], config: &Configuration) -> Vec<BoundingBox> {
        match self {
            DomainSpec::SingleCube => vec![universe_for(particles, config, 0.0)],
            DomainSpec::TiledGrid { dims, origin, tile, .. } => {
                let d = [dims[0].max(1), dims[1].max(1), dims[2].max(1)];
                let mut out = Vec::with_capacity(d[0] * d[1] * d[2]);
                for k in 0..d[2] {
                    for j in 0..d[1] {
                        for i in 0..d[0] {
                            let lo = *origin
                                + Vec3::new(i as f64 * tile, j as f64 * tile, k as f64 * tile);
                            let hi = *origin
                                + Vec3::new(
                                    (i + 1) as f64 * tile,
                                    (j + 1) as f64 * tile,
                                    (k + 1) as f64 * tile,
                                );
                            out.push(BoundingBox::new(lo, hi));
                        }
                    }
                }
                out
            }
            DomainSpec::Explicit { boxes, .. } => boxes.clone(),
        }
    }

    /// The owning box index for a position (already wrapped into the
    /// primary cell when the domain is periodic). Total: every position
    /// maps to exactly one box, clamping / nearest-box rules cover
    /// positions outside every box.
    pub fn assign(&self, pos: Vec3, boxes: &[BoundingBox]) -> usize {
        match self {
            DomainSpec::SingleCube => 0,
            DomainSpec::TiledGrid { dims, origin, tile, .. } => {
                let d = [dims[0].max(1), dims[1].max(1), dims[2].max(1)];
                let mut idx = [0usize; 3];
                for a in 0..3 {
                    let t = ((pos.component(a) - origin.component(a)) / tile).floor();
                    idx[a] = (t.max(0.0) as usize).min(d[a] - 1);
                }
                idx[0] + d[0] * (idx[1] + d[1] * idx[2])
            }
            DomainSpec::Explicit { .. } => {
                for (i, b) in boxes.iter().enumerate() {
                    if b.contains(pos) {
                        return i;
                    }
                }
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (i, b) in boxes.iter().enumerate() {
                    let d = b.dist_sq_to(pos);
                    if d < best_d {
                        best_d = d;
                        best = i;
                    }
                }
                best
            }
        }
    }
}

// ---------------------------------------------------------------------
// Forest decomposition.
// ---------------------------------------------------------------------

/// One directed seam: box `src`, translated by the lattice vector
/// `shift`, abuts box `dst` — ghosts flow `src → dst` along it. Open
/// domains only have zero shifts; periodic domains add wrap-around
/// routes (including a box abutting itself through the seam).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GhostRoute {
    /// Source box index.
    pub src: usize,
    /// Destination box index.
    pub dst: usize,
    /// Whole-period translation applied to `src` content.
    pub shift: Vec3,
}

/// A decomposed forest: one [`Decomposition`] per domain box plus the
/// adjacency that stitches the boxes together.
pub struct Forest {
    /// The domain specification the forest was built from.
    pub spec: DomainSpec,
    /// The domain boxes (ownership regions).
    pub boxes: Vec<BoundingBox>,
    /// The periodic wrapping ([`PeriodicBox::OPEN`] when open).
    pub period: PeriodicBox,
    /// Per-box decompositions (empty subtree list for empty boxes).
    pub decomps: Vec<Decomposition>,
    /// Particles owned per box.
    pub n_owned: Vec<usize>,
    /// Directed seams, in deterministic `(src, dst, shift)` order.
    pub routes: Vec<GhostRoute>,
}

/// Summary counters for `forest.*` metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ForestStats {
    /// Number of domain boxes.
    pub boxes: u64,
    /// Number of directed ghost routes.
    pub routes: u64,
    /// Total owned particles across boxes.
    pub owned: u64,
    /// Largest per-box ownership count.
    pub owned_max: u64,
    /// Total subtree pieces across boxes.
    pub subtrees: u64,
    /// Leaf splits performed by seam balancing (filled by the caller
    /// from [`enforce_seam_balance`]'s return value).
    pub seam_splits: u64,
}

impl MetricSource for ForestStats {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.boxes"), self.boxes);
        registry.set_u64(format!("{prefix}.routes"), self.routes);
        registry.set_u64(format!("{prefix}.owned"), self.owned);
        registry.set_u64(format!("{prefix}.owned_max"), self.owned_max);
        registry.set_u64(format!("{prefix}.subtrees"), self.subtrees);
        registry.set_u64(format!("{prefix}.seam_splits"), self.seam_splits);
    }
}

impl Forest {
    /// Summary counters (without `seam_splits`, which the caller owns).
    pub fn stats(&self) -> ForestStats {
        ForestStats {
            boxes: self.boxes.len() as u64,
            routes: self.routes.len() as u64,
            owned: self.n_owned.iter().map(|&n| n as u64).sum(),
            owned_max: self.n_owned.iter().map(|&n| n as u64).max().unwrap_or(0),
            subtrees: self.decomps.iter().map(|d| d.subtrees.len() as u64).sum(),
            seam_splits: 0,
        }
    }

    /// Builds every box's trees from its decomposition. Returns one
    /// tree list per box, in box order (an empty list for empty boxes).
    pub fn build_trees<D: Data>(
        &self,
        config: &Configuration,
        parallel: bool,
    ) -> Vec<Vec<BuiltTree<D>>> {
        self.decomps
            .iter()
            .map(|d| {
                d.subtrees
                    .iter()
                    .map(|piece| {
                        let builder = TreeBuilder {
                            tree_type: config.tree_type,
                            bucket_size: config.bucket_size,
                            parallel,
                            root_key: piece.key,
                            root_depth: piece.depth,
                        };
                        builder.build::<D>(piece.particles.clone(), piece.bbox)
                    })
                    .collect()
            })
            .collect()
    }
}

/// The per-box configuration: the global Subtree / Partition budgets
/// are divided across boxes (each box keeps at least one of each).
pub fn per_box_config(config: &Configuration, n_boxes: usize) -> Configuration {
    let mut cfg = config.clone();
    let n = n_boxes.max(1);
    cfg.n_subtrees = (config.n_subtrees / n).max(1);
    cfg.n_partitions = (config.n_partitions / n).max(1);
    cfg
}

/// Buckets particles into their owning boxes (wrapping positions into
/// the primary cell first when the domain is periodic). Returns the
/// realized boxes, the wrapping, and one particle list per box with
/// input order preserved within each box.
pub fn assign_to_boxes(
    mut particles: Vec<Particle>,
    config: &Configuration,
    spec: &DomainSpec,
) -> (Vec<BoundingBox>, PeriodicBox, Vec<Vec<Particle>>) {
    let period = spec.period();
    let origin = match spec {
        DomainSpec::TiledGrid { origin, .. } => *origin,
        _ => Vec3::ZERO,
    };
    if period.is_periodic() {
        for p in particles.iter_mut() {
            p.pos = period.wrap(p.pos, origin);
        }
    }
    let boxes = spec.boxes(&particles, config);
    let mut buckets: Vec<Vec<Particle>> = vec![Vec::new(); boxes.len()];
    for p in particles {
        buckets[spec.assign(p.pos, &boxes)].push(p);
    }
    (boxes, period, buckets)
}

/// The universe a box's own decomposition runs in: the domain box grown
/// over any clamped-in stragglers, cubed for octree-family trees (the
/// same rule as [`universe_for`]). Neighboring universes may overlap
/// slightly after cubing; ownership is decided by [`DomainSpec::assign`],
/// not by the universes.
fn box_universe(bbox: BoundingBox, particles: &[Particle], config: &Configuration) -> BoundingBox {
    let mut u = bbox;
    for p in particles {
        u.grow(p.pos);
    }
    match config.tree_type {
        TreeType::Octree | TreeType::BinaryOct => u.bounding_cube(),
        _ => u,
    }
}

/// Decomposes `particles` over the domain `spec`: particles are bucketed
/// into their owning boxes, each box runs the standard
/// [`decompose_within`] with the per-box Subtree / Partition budget, and
/// the inter-box adjacency is derived from box geometry (plus periodic
/// images). A `SingleCube` spec reproduces the single-domain pipeline
/// exactly.
pub fn decompose_forest(
    particles: Vec<Particle>,
    config: &Configuration,
    spec: &DomainSpec,
) -> Forest {
    let (boxes, period, buckets) = assign_to_boxes(particles, config, spec);
    let cfg = per_box_config(config, boxes.len());
    let mut n_owned = Vec::with_capacity(boxes.len());
    let mut decomps = Vec::with_capacity(boxes.len());
    for (bbox, bucket) in boxes.iter().zip(buckets) {
        n_owned.push(bucket.len());
        if bucket.is_empty() {
            decomps.push(Decomposition {
                universe: *bbox,
                subtrees: Vec::new(),
                partitioner: Partitioner::KeyRanges { splitters: Vec::new() },
                n_partitions: cfg.n_partitions,
            });
        } else {
            let universe = box_universe(*bbox, &bucket, config);
            decomps.push(decompose_within(bucket, &cfg, universe));
        }
    }
    let routes = compute_routes(&boxes, &period);
    Forest { spec: spec.clone(), boxes, period, decomps, n_owned, routes }
}

/// A box translated by a lattice shift.
fn shifted_box(b: &BoundingBox, shift: Vec3) -> BoundingBox {
    BoundingBox::new(b.lo + shift, b.hi + shift)
}

/// The box-geometry tolerance: grid arithmetic can leave last-ulp gaps
/// between abutting faces, so "touching" means within a relative sliver.
fn touch_eps(boxes: &[BoundingBox]) -> f64 {
    let scale = boxes.iter().map(|b| b.size().max_component()).fold(0.0f64, f64::max);
    1e-7 * scale.max(1e-30)
}

/// Enumerates the directed seams: `(src, dst, shift)` such that `src`
/// translated by the lattice vector `shift` touches `dst`. Deterministic
/// `(src, dst, lexicographic shift)` order.
fn compute_routes(boxes: &[BoundingBox], period: &PeriodicBox) -> Vec<GhostRoute> {
    let shifts = period.image_shifts(true);
    let eps2 = {
        let e = touch_eps(boxes);
        e * e
    };
    let mut out = Vec::new();
    for src in 0..boxes.len() {
        for dst in 0..boxes.len() {
            for &shift in &shifts {
                if src == dst && shift == Vec3::ZERO {
                    continue;
                }
                if shifted_box(&boxes[src], shift).dist_sq_to_box(&boxes[dst]) <= eps2 {
                    out.push(GhostRoute { src, dst, shift });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// 2:1 seam balance.
// ---------------------------------------------------------------------

/// Refines octree leaves at box seams until no leaf touching a seam is
/// more than twice the edge length of a leaf it touches on the other
/// side (the forest-of-octrees 2:1 constraint, applied across boxes).
/// Only `TreeType::Octree` forests are refined — median-split trees
/// have no octant structure to subdivide, and `BinaryOct` levels split
/// one axis at a time; both are left untouched. Returns the number of
/// leaf splits performed.
pub fn enforce_seam_balance<D: Data>(
    trees: &mut [Vec<BuiltTree<D>>],
    boxes: &[BoundingBox],
    routes: &[GhostRoute],
    tree_type: TreeType,
    bucket_size: usize,
) -> u64 {
    if tree_type != TreeType::Octree || routes.is_empty() {
        return 0;
    }
    let bits = tree_type.bits_per_level();
    let eps = touch_eps(boxes);
    let eps2 = eps * eps;
    let mut total_splits = 0u64;
    // Each pass halves the offending leaves; edge ratios shrink
    // geometrically, so the fixpoint arrives long before the cap.
    for _pass in 0..32 {
        // (box, subtree) → keys of leaves to split this pass.
        let mut marks: Vec<Vec<BTreeSet<NodeKey>>> =
            trees.iter().map(|ts| vec![BTreeSet::new(); ts.len()]).collect();
        let mut marked = 0u64;
        for route in routes {
            // Leaves of src (shifted into dst's frame) near the seam.
            let near_src = seam_leaves(&trees[route.src], route.shift, &boxes[route.dst], eps);
            if near_src.is_empty() {
                continue;
            }
            let near_dst = seam_leaves(
                &trees[route.dst],
                Vec3::ZERO,
                &shifted_box(&boxes[route.src], route.shift),
                eps,
            );
            for &(ti, ni, sb, se) in &near_src {
                for &(tj, nj, db, de) in &near_dst {
                    if sb.dist_sq_to_box(&db) > eps2 {
                        continue;
                    }
                    // The 2:1 rule, both directions across this contact.
                    if se > 2.0 * de * (1.0 + 1e-12)
                        && splittable(&trees[route.src][ti], ni, bits)
                        && marks[route.src][ti].insert(trees[route.src][ti].nodes[ni as usize].key)
                    {
                        marked += 1;
                    }
                    if de > 2.0 * se * (1.0 + 1e-12)
                        && splittable(&trees[route.dst][tj], nj, bits)
                        && marks[route.dst][tj].insert(trees[route.dst][tj].nodes[nj as usize].key)
                    {
                        marked += 1;
                    }
                }
            }
        }
        if marked == 0 {
            break;
        }
        total_splits += marked;
        for (bi, box_marks) in marks.iter().enumerate() {
            for (ti, keys) in box_marks.iter().enumerate() {
                if !keys.is_empty() {
                    trees[bi][ti] = split_marked(&trees[bi][ti], keys, bits, bucket_size);
                }
            }
        }
    }
    total_splits
}

/// Leaves of a box's trees whose (shifted) region touches `target`:
/// `(subtree, node, shifted bbox, edge length)` in deterministic order.
fn seam_leaves<D: Data>(
    trees: &[BuiltTree<D>],
    shift: Vec3,
    target: &BoundingBox,
    eps: f64,
) -> Vec<(usize, NodeIdx, BoundingBox, f64)> {
    let eps2 = eps * eps;
    let mut out = Vec::new();
    for (ti, tree) in trees.iter().enumerate() {
        for ni in tree.leaf_indices() {
            let n = &tree.nodes[ni as usize];
            if !matches!(n.shape, NodeShape::Leaf { .. }) {
                continue;
            }
            let sb = shifted_box(&n.bbox, shift);
            if sb.dist_sq_to_box(target) <= eps2 {
                let edge = n.bbox.size().max_component();
                out.push((ti, ni, sb, edge));
            }
        }
    }
    out
}

/// True when the leaf at `ni` can take one more octree level (its key
/// has digits left).
fn splittable<D: Data>(tree: &BuiltTree<D>, ni: NodeIdx, bits: u32) -> bool {
    let n = &tree.nodes[ni as usize];
    matches!(n.shape, NodeShape::Leaf { .. }) && n.key.level(bits) < 63 / bits
}

/// Rebuilds a tree with the marked leaves split one octant level. The
/// whole arena is re-emitted in pre-order (buckets must tile the
/// particle array in arena order, so splicing in place is not an
/// option); untouched leaves keep their particles and `Data` exactly,
/// internal `Data` is re-merged bottom-up in slot order like the
/// builder does.
fn split_marked<D: Data>(
    tree: &BuiltTree<D>,
    marks: &BTreeSet<NodeKey>,
    bits: u32,
    bucket_size: usize,
) -> BuiltTree<D> {
    let mut nodes: Vec<BuildNode<D>> = Vec::with_capacity(tree.nodes.len() + marks.len() * 8);
    let mut particles: Vec<Particle> = Vec::with_capacity(tree.particles.len());
    copy_split(tree, 0, marks, bits, &mut nodes, &mut particles);
    let out = BuiltTree { nodes, particles, bits_per_level: tree.bits_per_level };
    debug_assert!(out.validate(bucket_size).is_ok(), "seam split broke tree invariants");
    let _ = bucket_size;
    out
}

/// Pre-order re-emit of `old[idx]` into the new arena. Returns the new
/// index of the node.
fn copy_split<D: Data>(
    old: &BuiltTree<D>,
    idx: NodeIdx,
    marks: &BTreeSet<NodeKey>,
    bits: u32,
    nodes: &mut Vec<BuildNode<D>>,
    particles: &mut Vec<Particle>,
) -> NodeIdx {
    let n = &old.nodes[idx as usize];
    let me = nodes.len() as NodeIdx;
    match n.shape {
        NodeShape::Empty => {
            nodes.push(BuildNode {
                key: n.key,
                bbox: n.bbox,
                shape: NodeShape::Empty,
                children: [NO_NODE; 8],
                data: D::default(),
                n_particles: 0,
                depth: n.depth,
            });
        }
        NodeShape::Internal => {
            nodes.push(BuildNode {
                key: n.key,
                bbox: n.bbox,
                shape: NodeShape::Internal,
                children: [NO_NODE; 8],
                data: D::default(),
                n_particles: n.n_particles,
                depth: n.depth,
            });
            let mut children = [NO_NODE; 8];
            let mut data = D::default();
            for (slot, &c) in n.children.iter().enumerate() {
                if c == NO_NODE {
                    continue;
                }
                let ci = copy_split(old, c, marks, bits, nodes, particles);
                children[slot] = ci;
                let child_data = nodes[ci as usize].data.clone();
                data.merge(&child_data);
            }
            nodes[me as usize].children = children;
            nodes[me as usize].data = data;
        }
        NodeShape::Leaf { start, end } => {
            let bucket = &old.particles[start as usize..end as usize];
            if marks.contains(&n.key) {
                // Promote the leaf to an internal node: partition its
                // bucket by octant (stable, so within-octant order is
                // the old bucket order) and emit one child leaf per
                // non-empty octant, exactly as the builder would.
                let mut sorted: Vec<Particle> = bucket.to_vec();
                sorted.sort_by_key(|p| n.bbox.octant_of(p.pos));
                nodes.push(BuildNode {
                    key: n.key,
                    bbox: n.bbox,
                    shape: NodeShape::Internal,
                    children: [NO_NODE; 8],
                    data: D::default(),
                    n_particles: n.n_particles,
                    depth: n.depth,
                });
                let mut children = [NO_NODE; 8];
                let mut data = D::default();
                let mut i = 0usize;
                while i < sorted.len() {
                    let oct = n.bbox.octant_of(sorted[i].pos);
                    let j = i + sorted[i..]
                        .iter()
                        .take_while(|p| n.bbox.octant_of(p.pos) == oct)
                        .count();
                    let cb = n.bbox.octant(oct);
                    let ck = n.key.child(oct, bits);
                    let s = particles.len() as u32;
                    particles.extend_from_slice(&sorted[i..j]);
                    let child_data = D::from_leaf(&sorted[i..j], &cb);
                    data.merge(&child_data);
                    children[oct] = nodes.len() as NodeIdx;
                    nodes.push(BuildNode {
                        key: ck,
                        bbox: cb,
                        shape: NodeShape::Leaf { start: s, end: particles.len() as u32 },
                        children: [NO_NODE; 8],
                        data: child_data,
                        n_particles: (j - i) as u32,
                        depth: n.depth + 1,
                    });
                    i = j;
                }
                nodes[me as usize].children = children;
                nodes[me as usize].data = data;
            } else {
                let s = particles.len() as u32;
                particles.extend_from_slice(bucket);
                nodes.push(BuildNode {
                    key: n.key,
                    bbox: n.bbox,
                    shape: NodeShape::Leaf { start: s, end: s + n.n_particles },
                    children: [NO_NODE; 8],
                    data: n.data.clone(),
                    n_particles: n.n_particles,
                    depth: n.depth,
                });
            }
        }
    }
    me
}

// ---------------------------------------------------------------------
// Ghost-layer exchange.
// ---------------------------------------------------------------------

/// Ghost particles one route materialized: copies of `src` boundary
/// particles, positions already translated into `dst`'s frame.
#[derive(Clone, Debug)]
pub struct GhostZone {
    /// Source box.
    pub src: usize,
    /// Destination box.
    pub dst: usize,
    /// Translation applied to the copies.
    pub shift: Vec3,
    /// The shifted particle copies (ids preserved from the originals —
    /// a ghost is identified, never owned).
    pub particles: Vec<Particle>,
    /// Source leaf buckets that contributed at least one particle.
    pub n_buckets: u64,
}

impl GhostZone {
    /// Wire size of this zone's payload.
    pub fn bytes(&self) -> u64 {
        (self.particles.len() * size_of::<Particle>()) as u64
    }
}

/// `ghost.*` counters for one exchange.
#[derive(Clone, Copy, Debug, Default)]
pub struct GhostStats {
    /// Routes considered.
    pub routes: u64,
    /// Zones that carried at least one particle.
    pub zones: u64,
    /// Ghost particle copies materialized.
    pub particles: u64,
    /// Source buckets that contributed.
    pub buckets: u64,
    /// Total payload bytes.
    pub bytes: u64,
}

impl MetricSource for GhostStats {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_u64(format!("{prefix}.routes"), self.routes);
        registry.set_u64(format!("{prefix}.zones"), self.zones);
        registry.set_u64(format!("{prefix}.particles"), self.particles);
        registry.set_u64(format!("{prefix}.buckets"), self.buckets);
        registry.set_u64(format!("{prefix}.bytes"), self.bytes);
    }
}

/// The materialized ghost layers of one exchange.
#[derive(Clone, Debug, Default)]
pub struct GhostLayer {
    /// Non-empty zones in route order.
    pub zones: Vec<GhostZone>,
    /// Counters for `ghost.*` metrics.
    pub stats: GhostStats,
}

impl GhostLayer {
    /// All ghost particles destined for one box, in zone order.
    pub fn ghosts_for(&self, dst: usize) -> Vec<Particle> {
        let mut out = Vec::new();
        for z in &self.zones {
            if z.dst == dst {
                out.extend_from_slice(&z.particles);
            }
        }
        out
    }
}

/// Materializes the ghost layer: for every route, the source box's leaf
/// buckets within `radius` of the (shifted) destination box contribute
/// shifted copies of their particles that actually fall within the
/// radius. This is the shared-memory exchange — a deterministic
/// sequential walk, wrapped in a `"ghost exchange"` telemetry span; the
/// DES engine prices the same zones with [`des_ghost_exchange`].
pub fn exchange_ghosts<D: Data>(
    forest: &Forest,
    trees: &[Vec<BuiltTree<D>>],
    radius: f64,
    telemetry: &Telemetry,
) -> GhostLayer {
    telemetry.wall_span(0, "ghost exchange", None, || {
        let r2 = radius * radius;
        let mut layer = GhostLayer::default();
        layer.stats.routes = forest.routes.len() as u64;
        for route in &forest.routes {
            let dst_box = &forest.boxes[route.dst];
            let mut zone = GhostZone {
                src: route.src,
                dst: route.dst,
                shift: route.shift,
                particles: Vec::new(),
                n_buckets: 0,
            };
            for tree in &trees[route.src] {
                for ni in tree.leaf_indices() {
                    let n = &tree.nodes[ni as usize];
                    let (start, end) = match n.shape {
                        NodeShape::Leaf { start, end } => (start, end),
                        _ => continue,
                    };
                    if shifted_box(&n.bbox, route.shift).dist_sq_to_box(dst_box) > r2 {
                        continue;
                    }
                    let before = zone.particles.len();
                    for p in &tree.particles[start as usize..end as usize] {
                        let pos = p.pos + route.shift;
                        if dst_box.dist_sq_to(pos) <= r2 {
                            zone.particles.push(Particle { pos, ..*p });
                        }
                    }
                    if zone.particles.len() > before {
                        zone.n_buckets += 1;
                    }
                }
            }
            if !zone.particles.is_empty() {
                layer.stats.zones += 1;
                layer.stats.particles += zone.particles.len() as u64;
                layer.stats.buckets += zone.n_buckets;
                layer.stats.bytes += zone.bytes();
                layer.zones.push(zone);
            }
        }
        layer
    })
}

// ---------------------------------------------------------------------
// DES pricing of the exchange.
// ---------------------------------------------------------------------

/// What a DES-priced exchange cost on the virtual timeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct GhostDesReport {
    /// Virtual seconds from first pack to last unpack.
    pub makespan: f64,
    /// Bytes / messages charged to the network.
    pub comm: CommStats,
    /// Busy fraction of the machine during the exchange.
    pub utilization: f64,
}

impl MetricSource for GhostDesReport {
    fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_f64(format!("{prefix}.makespan_s"), self.makespan);
        registry.set_f64(format!("{prefix}.utilization"), self.utilization);
        self.comm.register_metrics(&format!("{prefix}.comm"), registry);
    }
}

/// Calibrated pack/unpack cost: a bucket-gather copy per particle.
const GHOST_PACK_S_PER_PARTICLE: f64 = 50e-9;

/// Prices a materialized ghost layer through the machine model: each
/// zone is packed on its source box's rank (cost ∝ particles), injected
/// through the NIC (`bytes × byte_time + latency`, charged to
/// [`Sim::comm`]), and unpacked on the destination rank. Boxes are
/// placed round-robin over ranks, so any multi-box forest on a
/// multi-rank machine puts real bytes on the wire. Spans land on the
/// virtual timeline via the simulator's telemetry handle.
pub fn des_ghost_exchange(
    layer: &GhostLayer,
    machine: MachineSpec,
    telemetry: Telemetry,
) -> GhostDesReport {
    #[derive(Clone, Copy)]
    enum Ev {
        Packed(usize),
        Arrived(usize),
        Unpacked,
    }
    let mut sim: Sim<Ev> = Sim::new(machine);
    sim.telemetry = telemetry;
    let n_ranks = sim.n_ranks().max(1) as usize;
    let rank_of = move |b: usize| (b % n_ranks) as u32;
    for (zi, z) in layer.zones.iter().enumerate() {
        let cost = z.particles.len() as f64 * GHOST_PACK_S_PER_PARTICLE;
        sim.spawn(rank_of(z.src), Phase::LeafSharing, cost, Ev::Packed(zi));
    }
    sim.run(|sim, ev| match ev {
        Ev::Packed(zi) => {
            let z = &layer.zones[zi];
            sim.send(rank_of(z.src), rank_of(z.dst), z.bytes(), Ev::Arrived(zi));
        }
        Ev::Arrived(zi) => {
            let z = &layer.zones[zi];
            let cost = z.particles.len() as f64 * GHOST_PACK_S_PER_PARTICLE;
            sim.spawn(rank_of(z.dst), Phase::CacheInsertion, cost, Ev::Unpacked);
        }
        Ev::Unpacked => {}
    });
    GhostDesReport { makespan: sim.makespan(), comm: sim.comm, utilization: sim.utilization() }
}

// ---------------------------------------------------------------------
// Forest maintenance.
// ---------------------------------------------------------------------

/// What one [`ForestMaintainer::advance`] did.
#[derive(Clone, Debug, Default)]
pub struct ForestRound {
    /// Per-box maintenance rounds, in box order.
    pub rounds: Vec<MaintainRound>,
    /// Particles handed from one box to another this step.
    pub n_crossed: u64,
    /// Boxes that fell back to a full (per-box) rebuild.
    pub rebuilt_boxes: Vec<u32>,
}

/// Incremental maintenance over a forest: one [`TreeMaintainer`] per
/// box. A particle that leaves its box is routed to the owning box
/// before the per-box advance, so only the boxes whose populations
/// changed fall back to a rebuild — an escape no longer forces a
/// *global* re-decomposition the way a single maintainer's
/// universe-escape fallback does. With a `SingleCube` spec this is
/// exactly a single [`TreeMaintainer`] (no routing, identical
/// fallback behavior).
pub struct ForestMaintainer<D: Data> {
    spec: DomainSpec,
    boxes: Vec<BoundingBox>,
    period: PeriodicBox,
    origin: Vec3,
    maintainers: Vec<TreeMaintainer<D>>,
}

impl<D: Data> ForestMaintainer<D> {
    /// Buckets particles into boxes and seeds one maintainer per box.
    /// Returns the per-box built trees. Boxes that start empty are not
    /// supported (give every box at least one particle).
    pub fn seed(
        config: &Configuration,
        particles: Vec<Particle>,
        spec: &DomainSpec,
        parallel: bool,
    ) -> (ForestMaintainer<D>, Vec<Vec<BuiltTree<D>>>) {
        let (boxes, period, buckets) = assign_to_boxes(particles, config, spec);
        let cfg = per_box_config(config, boxes.len());
        let origin = match spec {
            DomainSpec::TiledGrid { origin, .. } => *origin,
            _ => Vec3::ZERO,
        };
        let mut maintainers = Vec::with_capacity(boxes.len());
        let mut trees = Vec::with_capacity(boxes.len());
        for bucket in buckets {
            assert!(
                !bucket.is_empty(),
                "ForestMaintainer requires every domain box to own at least one particle at seed"
            );
            let (m, t) = TreeMaintainer::seed(&cfg, bucket, parallel);
            maintainers.push(m);
            trees.push(t);
        }
        (ForestMaintainer { spec: spec.clone(), boxes, period, origin, maintainers }, trees)
    }

    /// The domain boxes.
    pub fn boxes(&self) -> &[BoundingBox] {
        &self.boxes
    }

    /// Per-box cumulative `tree.update.*` counters.
    pub fn totals(&self, box_idx: usize) -> &UpdateTotals {
        self.maintainers[box_idx].totals()
    }

    /// Sums the per-box counters (for `tree.update.*` metrics).
    pub fn combined_totals(&self) -> UpdateTotals {
        let mut out = UpdateTotals::default();
        for m in &self.maintainers {
            let t = m.totals();
            out.steps = out.steps.max(t.steps);
            out.moved += t.moved;
            out.patched += t.patched;
            out.escaped += t.escaped;
            out.migrated += t.migrated;
            out.batches += t.batches;
            out.splits += t.splits;
            out.merges += t.merges;
            out.pruned += t.pruned;
            out.refreshed += t.refreshed;
            out.subtree_rebuilds += t.subtree_rebuilds;
            out.full_rebuilds += t.full_rebuilds;
            out.update_errors += t.update_errors;
            out.last_imbalance = out.last_imbalance.max(t.last_imbalance);
        }
        out
    }

    /// One forest step. `masters` is the integrated per-box particle
    /// state in the order the previous trees' buckets tiled it. Escaped
    /// particles are wrapped (periodic domains), re-routed to their
    /// owning box (appended in a canonical `(key, id)` order), and then
    /// every box advances independently — boxes untouched by the
    /// migration keep their incremental state.
    pub fn advance(
        &mut self,
        mut masters: Vec<Vec<Particle>>,
    ) -> (Vec<Vec<BuiltTree<D>>>, ForestRound) {
        assert_eq!(masters.len(), self.boxes.len(), "one master list per box");
        let mut round = ForestRound::default();
        // Route box-crossers. The per-box retain keeps each box's
        // survivors in master order; arrivals are appended sorted so
        // the result is a canonical function of the particle state.
        let mut moved: Vec<Vec<Particle>> = vec![Vec::new(); self.boxes.len()];
        for (bi, master) in masters.iter_mut().enumerate() {
            master.retain_mut(|p| {
                if self.period.is_periodic() {
                    p.pos = self.period.wrap(p.pos, self.origin);
                }
                let dest = self.spec.assign(p.pos, &self.boxes);
                if dest == bi {
                    true
                } else {
                    moved[dest].push(*p);
                    false
                }
            });
        }
        for (bi, mut arrivals) in moved.into_iter().enumerate() {
            if arrivals.is_empty() {
                continue;
            }
            round.n_crossed += arrivals.len() as u64;
            arrivals.sort_unstable_by_key(|p| (p.key, p.id));
            masters[bi].extend(arrivals);
        }
        // Per-box advance: a population change falls back inside that
        // box's maintainer only.
        let mut trees = Vec::with_capacity(self.boxes.len());
        for (bi, master) in masters.into_iter().enumerate() {
            let (t, r) = self.maintainers[bi].advance(master);
            if r.full_rebuild {
                round.rebuilt_boxes.push(bi as u32);
            }
            round.rounds.push(r);
            trees.push(t);
        }
        (trees, round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Configuration, DecompType};
    use paratreet_particles::gen;
    use paratreet_telemetry::Telemetry;
    use paratreet_tree::CountData;

    fn config(tree: TreeType) -> Configuration {
        Configuration {
            tree_type: tree,
            decomp_type: DecompType::Sfc,
            bucket_size: 8,
            n_subtrees: 8,
            n_partitions: 8,
            ..Configuration::default()
        }
    }

    fn owned_ids(f: &Forest) -> Vec<u64> {
        let mut ids: Vec<u64> = f
            .decomps
            .iter()
            .flat_map(|d| d.subtrees.iter().flat_map(|s| s.particles.iter().map(|p| p.id)))
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn tiled_grid_boxes_and_assignment() {
        let spec = DomainSpec::tiled([2, 2, 1], 1.0, true);
        let boxes = spec.boxes(&[], &config(TreeType::Octree));
        assert_eq!(boxes.len(), 4);
        // Box 0 is the tile at the origin; linear order is x-fastest.
        assert_eq!(boxes[0].lo, Vec3::ZERO);
        assert_eq!(boxes[1].lo, Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(boxes[2].lo, Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(spec.assign(Vec3::new(0.5, 0.5, 0.5), &boxes), 0);
        assert_eq!(spec.assign(Vec3::new(1.5, 0.5, 0.5), &boxes), 1);
        assert_eq!(spec.assign(Vec3::new(0.5, 1.5, 0.5), &boxes), 2);
        assert_eq!(spec.assign(Vec3::new(1.5, 1.5, 0.5), &boxes), 3);
        // Out-of-grid positions clamp to the nearest tile.
        assert_eq!(spec.assign(Vec3::new(-3.0, 0.5, 0.5), &boxes), 0);
        assert_eq!(spec.assign(Vec3::new(9.0, 9.0, 0.5), &boxes), 3);
    }

    #[test]
    fn forest_partitions_particles_exactly() {
        let ps = gen::tiled_plummer(600, [2, 1, 1], 7, 1.0, 1.0);
        let n = ps.len();
        let spec = DomainSpec::tiled([2, 1, 1], 1.0, false);
        let f = decompose_forest(ps, &config(TreeType::Octree), &spec);
        assert_eq!(f.boxes.len(), 2);
        assert_eq!(f.n_owned.iter().sum::<usize>(), n);
        let ids = owned_ids(&f);
        assert_eq!(ids.len(), n);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(id, i as u64, "ids must be owned exactly once");
        }
    }

    #[test]
    fn single_cube_matches_single_domain_decompose() {
        let ps = gen::plummer(400, 11, 1.0, 1.0);
        let cfg = config(TreeType::Octree);
        let f = decompose_forest(ps.clone(), &cfg, &DomainSpec::SingleCube);
        let d = crate::decompose(ps, &cfg);
        assert_eq!(f.boxes.len(), 1);
        assert!(f.routes.is_empty());
        assert_eq!(f.decomps[0].subtrees.len(), d.subtrees.len());
        for (a, b) in f.decomps[0].subtrees.iter().zip(&d.subtrees) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.particles.len(), b.particles.len());
        }
    }

    #[test]
    fn routes_cover_open_and_periodic_seams() {
        let cfg = config(TreeType::Octree);
        // Open 2×1×1 grid: one seam, two directed routes, zero shifts.
        let open = decompose_forest(
            gen::tiled_plummer(200, [2, 1, 1], 3, 1.0, 1.0),
            &cfg,
            &DomainSpec::tiled([2, 1, 1], 1.0, false),
        );
        assert_eq!(open.routes.len(), 2);
        assert!(open.routes.iter().all(|r| r.shift == Vec3::ZERO));
        // Periodic 2×1×1 grid: the same seam plus wrap-around images on
        // x, and self-routes through the periodic y/z faces.
        let per = decompose_forest(
            gen::tiled_plummer(200, [2, 1, 1], 3, 1.0, 1.0),
            &cfg,
            &DomainSpec::tiled([2, 1, 1], 1.0, true),
        );
        assert!(per.routes.len() > open.routes.len());
        assert!(per.routes.iter().any(|r| r.src == 0 && r.dst == 1 && r.shift.x != 0.0));
        assert!(per.routes.iter().any(|r| r.src == r.dst && r.shift != Vec3::ZERO));
    }

    #[test]
    fn ghost_exchange_materializes_seam_particles() {
        let cfg = config(TreeType::Octree);
        let ps = gen::tiled_plummer(800, [2, 1, 1], 5, 1.0, 1.0);
        let spec = DomainSpec::tiled([2, 1, 1], 1.0, false);
        let f = decompose_forest(ps, &cfg, &spec);
        let trees = f.build_trees::<CountData>(&cfg, false);
        let radius = 0.1;
        let layer = exchange_ghosts(&f, &trees, radius, &Telemetry::disabled());
        assert!(layer.stats.particles > 0, "seam particles must become ghosts");
        assert_eq!(layer.stats.bytes, layer.stats.particles * size_of::<Particle>() as u64);
        // Every ghost for box 1 sits within the radius of box 1 and is a
        // copy of a particle owned by box 0 (open domain: zero shift).
        let owned0: std::collections::HashSet<u64> =
            f.decomps[0].subtrees.iter().flat_map(|s| s.particles.iter().map(|p| p.id)).collect();
        let ghosts1 = layer.ghosts_for(1);
        assert!(!ghosts1.is_empty());
        for g in &ghosts1 {
            assert!(f.boxes[1].dist_sq_to(g.pos) <= radius * radius + 1e-12);
            assert!(owned0.contains(&g.id), "ghost ids identify owned originals");
        }
        // Determinism: the same inputs produce the same layer.
        let trees2 = f.build_trees::<CountData>(&cfg, false);
        let layer2 = exchange_ghosts(&f, &trees2, radius, &Telemetry::disabled());
        assert_eq!(layer.stats.particles, layer2.stats.particles);
        assert_eq!(layer.stats.bytes, layer2.stats.bytes);
    }

    #[test]
    fn periodic_ghosts_wrap_across_the_seam() {
        let cfg = config(TreeType::Octree);
        let ps = gen::tiled_plummer(600, [2, 1, 1], 9, 1.0, 1.0);
        let spec = DomainSpec::tiled([2, 1, 1], 1.0, true);
        let f = decompose_forest(ps, &cfg, &spec);
        let trees = f.build_trees::<CountData>(&cfg, false);
        let layer = exchange_ghosts(&f, &trees, 0.1, &Telemetry::disabled());
        // Some zone must carry a nonzero shift: content wrapped through
        // the periodic boundary.
        assert!(layer.zones.iter().any(|z| z.shift != Vec3::ZERO));
    }

    #[test]
    fn seam_balance_enforces_two_to_one() {
        let cfg = config(TreeType::Octree);
        // Box 0 dense (deep leaves at the seam), box 1 sparse (one fat
        // leaf covering its whole tile).
        let mut ps = gen::plummer(700, 13, 0.05, 1.0);
        for p in ps.iter_mut() {
            // Park the cluster against the seam at x = 1.
            p.pos = Vec3::new(
                0.9 + 0.1 * (p.pos.x.rem_euclid(1.0)),
                p.pos.y.rem_euclid(1.0),
                p.pos.z.rem_euclid(1.0),
            );
        }
        let mut sparse = gen::uniform_cube(5, 29, 1.0, 1.0);
        let base = ps.len() as u64;
        for (i, p) in sparse.iter_mut().enumerate() {
            p.id = base + i as u64;
            p.pos = Vec3::new(1.0 + p.pos.x.rem_euclid(1.0) * 0.999, p.pos.y, p.pos.z);
        }
        ps.extend(sparse);
        let spec = DomainSpec::tiled([2, 1, 1], 1.0, false);
        let f = decompose_forest(ps, &cfg, &spec);
        let mut trees = f.build_trees::<CountData>(&cfg, false);
        let before: u64 = trees[1].iter().map(|t| t.root().data.count).sum();
        let splits =
            enforce_seam_balance(&mut trees, &f.boxes, &f.routes, cfg.tree_type, cfg.bucket_size);
        assert!(splits > 0, "the sparse side must refine at the seam");
        // Structure stays valid and no particles are lost.
        for ts in &trees {
            for t in ts {
                t.validate(cfg.bucket_size).unwrap();
            }
        }
        let after: u64 = trees[1].iter().map(|t| t.root().data.count).sum();
        assert_eq!(before, after);
        // The 2:1 constraint actually holds at the seam now.
        let eps = touch_eps(&f.boxes);
        for route in &f.routes {
            let a = seam_leaves(&trees[route.src], route.shift, &f.boxes[route.dst], eps);
            let b = seam_leaves(
                &trees[route.dst],
                Vec3::ZERO,
                &shifted_box(&f.boxes[route.src], route.shift),
                eps,
            );
            for &(_, _, sb, se) in &a {
                for &(_, _, db, de) in &b {
                    if sb.dist_sq_to_box(&db) <= eps * eps {
                        assert!(
                            se <= 2.0 * de * (1.0 + 1e-9) && de <= 2.0 * se * (1.0 + 1e-9),
                            "leaf edges {se} vs {de} violate 2:1 at the seam"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn des_exchange_charges_the_comm_timeline() {
        let cfg = config(TreeType::Octree);
        let ps = gen::tiled_plummer(800, [2, 1, 1], 5, 1.0, 1.0);
        let spec = DomainSpec::tiled([2, 1, 1], 1.0, false);
        let f = decompose_forest(ps, &cfg, &spec);
        let trees = f.build_trees::<CountData>(&cfg, false);
        let layer = exchange_ghosts(&f, &trees, 0.1, &Telemetry::disabled());
        let report = des_ghost_exchange(&layer, MachineSpec::test(2, 2), Telemetry::disabled());
        assert!(report.comm.bytes > 0, "inter-rank zones must put bytes on the wire");
        assert!(report.comm.messages > 0);
        assert!(report.makespan > 0.0);
        assert_eq!(report.comm.bytes, layer.stats.bytes);
    }

    #[test]
    fn box_escape_scopes_fallback_to_the_affected_boxes() {
        // Three explicit boxes along x. A particle drifts from box 0
        // into box 1; box 2 must keep its incremental state (no full
        // rebuild), while boxes 0 and 1 rebuild from their changed
        // populations.
        let cfg = config(TreeType::Octree);
        let boxes = vec![
            BoundingBox::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0)),
            BoundingBox::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0)),
            BoundingBox::new(Vec3::new(2.0, 0.0, 0.0), Vec3::new(3.0, 1.0, 1.0)),
        ];
        let spec = DomainSpec::Explicit { boxes, period: None };
        let mut ps = Vec::new();
        for b in 0..3u64 {
            let mut chunk = gen::uniform_cube(60, 17 + b, 1.0, 1.0);
            for (i, p) in chunk.iter_mut().enumerate() {
                p.id = b * 60 + i as u64;
                p.pos.x = p.pos.x.rem_euclid(1.0) * 0.98 + b as f64 + 0.01;
                p.pos.y = p.pos.y.rem_euclid(1.0);
                p.pos.z = p.pos.z.rem_euclid(1.0);
            }
            ps.extend(chunk);
        }
        let (mut fm, trees) = ForestMaintainer::<CountData>::seed(&cfg, ps, &spec, false);
        let mut masters: Vec<Vec<Particle>> = trees
            .iter()
            .map(|ts| ts.iter().flat_map(|t| t.particles.iter().copied()).collect())
            .collect();
        // Step 1: nothing moves — every box advances incrementally.
        let (trees, round) = fm.advance(masters.clone());
        assert_eq!(round.n_crossed, 0);
        assert!(round.rebuilt_boxes.is_empty(), "quiescent step must not rebuild");
        masters = trees
            .iter()
            .map(|ts| ts.iter().flat_map(|t| t.particles.iter().copied()).collect())
            .collect();
        // Step 2: push one box-0 particle into box 1.
        masters[0][0].pos.x = 1.5;
        let rebuilds_before: Vec<u64> = (0..3).map(|b| fm.totals(b).full_rebuilds).collect();
        let (_trees, round) = fm.advance(masters);
        assert_eq!(round.n_crossed, 1);
        assert_eq!(
            fm.totals(2).full_rebuilds,
            rebuilds_before[2],
            "the untouched box must not be re-decomposed"
        );
        assert!(
            fm.totals(0).full_rebuilds > rebuilds_before[0]
                && fm.totals(1).full_rebuilds > rebuilds_before[1],
            "the affected boxes fall back locally"
        );
        assert_eq!(round.rebuilt_boxes, vec![0, 1]);
    }

    #[test]
    fn forest_stats_register_forest_metrics() {
        let cfg = config(TreeType::Octree);
        let f = decompose_forest(
            gen::tiled_plummer(300, [2, 1, 1], 3, 1.0, 1.0),
            &cfg,
            &DomainSpec::tiled([2, 1, 1], 1.0, false),
        );
        let mut reg = MetricsRegistry::new();
        reg.absorb("forest", &f.stats());
        assert_eq!(reg.get_u64("forest.boxes"), 2);
        assert!(reg.get_u64("forest.routes") >= 2);
        assert_eq!(reg.get_u64("forest.owned"), 300);
    }
}
