//! Figure 3: the software-cache model comparison.
//!
//! "Comparison of our shared memory cache 'WaitFree' against a
//! single-threaded model 'Sequential' and an exclusive-write model
//! 'XWrite' when performing Barnes-Hut gravity calculations on 80m
//! particles... executed on Stampede2 with 24 cores to a process."
//!
//! This harness runs the same experiment on the machine model: a
//! clustered dataset, monopole+quadrupole Barnes-Hut, Stampede2
//! processes of 24 workers, sweeping the total core count, for the
//! three cache models. The paper's shape: XWrite degrades first
//! (~1,536 cores), Sequential later (~6,144), WaitFree keeps scaling.
//!
//! ```text
//! cargo run --release -p paratreet-bench --bin fig3_cache_models -- \
//!     --particles 60000 --max-procs 256
//! ```

use paratreet_apps::gravity::GravityVisitor;
use paratreet_bench::{fmt_seconds, harness_telemetry, write_telemetry_outputs, Args};
use paratreet_core::{CacheModel, Configuration, DistributedEngine, TraversalKind};
use paratreet_particles::gen;
use paratreet_runtime::MachineSpec;
use paratreet_telemetry::Json;

fn main() {
    let args = Args::parse();
    let n = args.get_usize("particles", 40_000);
    let seed = args.get_u64("seed", 3);
    let theta = args.get_f64("theta", 0.7);
    let max_procs = args.get_usize("max-procs", 256);
    let json = args.get_bool("json", false);

    // The paper's dataset is clustered — that is what stresses the cache.
    let particles = gen::clustered(n, 8, seed, 1.0, 1.0);
    let visitor = GravityVisitor { theta, g: 1.0 };

    if !json {
        println!("Figure 3: average gravity traversal time vs cores, {n} clustered particles");
        println!("(Stampede2 machine model, 24 workers per process)\n");
        println!(
            "{:>7} {:>7} {:>12} {:>12} {:>12}",
            "procs", "cores", "WaitFree", "XWrite", "Sequential"
        );
        println!("{}", "-".repeat(56));
    }

    let telemetry = harness_telemetry(&args, true);
    let mut rows = Vec::new();
    let mut last_metrics = None;
    let mut procs = 1;
    while procs <= max_procs {
        let mut cells = vec![format!("{procs}"), format!("{}", procs * 24)];
        let mut row = Json::obj();
        row.push("procs", Json::U64(procs as u64));
        row.push("cores", Json::U64((procs * 24) as u64));
        for (name, model) in [
            ("waitfree", CacheModel::WaitFree),
            ("xwrite", CacheModel::XWrite),
            ("sequential", CacheModel::PerThread),
        ] {
            let config = Configuration { bucket_size: 16, ..Default::default() };
            let _ = telemetry.drain(); // keep only the final run's spans
            let engine = DistributedEngine::new(
                MachineSpec::stampede2_24(procs),
                config,
                model,
                TraversalKind::TopDown,
                &visitor,
            )
            .with_telemetry(telemetry.clone());
            let rep = engine.run_iteration(particles.clone());
            let traversal = rep.metrics.get_f64("time.traversal_s");
            cells.push(fmt_seconds(traversal));
            row.push(&format!("{name}_traversal_s"), Json::F64(traversal));
            if model == CacheModel::WaitFree {
                last_metrics = Some(rep.metrics);
            }
        }
        if json {
            rows.push(row);
        } else {
            println!(
                "{:>7} {:>7} {:>12} {:>12} {:>12}",
                cells[0], cells[1], cells[2], cells[3], cells[4]
            );
        }
        procs *= 2;
    }

    write_telemetry_outputs(&args, &telemetry, last_metrics.as_ref());

    if json {
        let mut doc = Json::obj();
        doc.push("figure", Json::Str("fig3_cache_models".to_string()));
        doc.push("particles", Json::U64(n as u64));
        doc.push("sweep", Json::Arr(rows));
        println!("{doc}");
        return;
    }
    println!();
    println!("paper shape: XWrite scaling degrades ~1,536 cores; Sequential ~6,144;");
    println!("WaitFree continues to scale. Traversal time only (build excluded).");
}
