//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and `proptest!` macro surface this
//! workspace uses, with two simplifications relative to real proptest:
//!
//! * **Deterministic seeding** — every test case is seeded from a hash
//!   of the test's module path + name + case index, so failures
//!   reproduce exactly without a persistence file.
//! * **No shrinking** — a failing case panics with the standard
//!   `assert!` message; inputs are not minimised.
//!
//! Both are acceptable trade-offs for a hermetic, network-free build.

use std::marker::PhantomData;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64-backed deterministic test RNG.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name and case index (deterministic).
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = TestRng { state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) };
        rng.next_u64(); // warm up so nearby seeds decorrelate
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy: Clone {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy { f: Rc::new(move |rng| inner.sample(rng)) }
    }

    /// Recursive strategies: `depth` levels of `recurse` layered over the
    /// base strategy, with a coin flip between base and recursive arms at
    /// each level. `_desired_size`/`_branch` are accepted for API parity
    /// and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![self.clone().boxed(), deeper]).boxed();
        }
        current
    }
}

/// Type-erased strategy (cheap to clone).
pub struct BoxedStrategy<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { f: Rc::clone(&self.f) }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].sample(rng)
    }
}

// Numeric range strategies.
macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.next_unit() * (self.end as f64 - self.start as f64)) as f32
    }
}

// Tuple strategies (up to 6 components).
macro_rules! impl_tuple_strategy {
    ($(($($S:ident $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite full-range doubles (no NaN/inf, which most property
        // tests would have to filter out anyway).
        (rng.next_unit() - 0.5) * 2e12
    }
}

// ---------------------------------------------------------------------------
// Collection / option / array modules
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A vector with length uniform in `len` and elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.below(span);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` 25% of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    #[derive(Clone)]
    pub struct Uniform3<S> {
        inner: S,
    }

    /// A `[T; 3]` with each component drawn from `inner`.
    pub fn uniform3<S: Strategy>(inner: S) -> Uniform3<S> {
        Uniform3 { inner }
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [self.inner.sample(rng), self.inner.sample(rng), self.inner.sample(rng)]
        }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

// ---------------------------------------------------------------------------
// Config + prelude
// ---------------------------------------------------------------------------

/// Runner configuration (`cases` is the only knob honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        #[test]
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}
