//! Quickstart: a complete Barnes-Hut gravity application.
//!
//! This is the Rust analogue of the paper's Fig. 8 `GravityMain`: choose
//! a configuration, start a top-down traversal with the gravity visitor,
//! then use the results. Everything else — decomposition, the
//! Partitions–Subtrees split, tree build, caching, parallel traversal,
//! write-back — is the framework's job.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paratreet::core_api::{Configuration, DecompType, Framework, TraversalKind};
use paratreet_apps::gravity::{CentroidData, GravityVisitor};
use paratreet_particles::gen;
use paratreet_tree::TreeType;

fn main() {
    // 10k particles in a uniform box — a tiny "present-day Universe".
    let particles = gen::uniform_cube(10_000, 42, 1.0, 1.0);

    // The paper's Fig. 8 configuration: octree + SFC decomposition.
    let config = Configuration {
        tree_type: TreeType::Octree,
        decomp_type: DecompType::Sfc,
        bucket_size: 16,
        n_subtrees: 8,
        n_partitions: 8,
        ..Default::default()
    };

    let mut framework: Framework<CentroidData> = Framework::new(config, particles);
    let visitor = GravityVisitor { theta: 0.7, g: 1.0 };

    // One iteration: the equivalent of `partitions().startDown<GravityVisitor>()`.
    let (_, report) = framework.step(|step| {
        step.traverse(&visitor, TraversalKind::TopDown);
    });

    // "outputParticleAccelerations()"
    let p = &framework.particles()[0];
    println!("first particle: pos {:?} acc {:?}", p.pos, p.acc);
    println!(
        "step: {} subtrees, {} partitions, {} buckets ({} split across partitions)",
        report.n_subtrees, report.n_partitions, report.n_buckets, report.n_split_leaves
    );
    println!(
        "work: {} particle-particle + {} particle-node interactions, {} opens",
        report.counts.leaf_interactions, report.counts.node_interactions, report.counts.opens
    );
    println!(
        "time: decompose {:.1}ms, build {:.1}ms, share {:.1}ms, traverse {:.1}ms",
        report.seconds_decompose * 1e3,
        report.seconds_build * 1e3,
        report.seconds_share * 1e3,
        report.seconds_traverse * 1e3
    );
}
